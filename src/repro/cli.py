"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common uses of the library without writing code:

* ``experiment`` — regenerate one of the paper's tables/figures.
* ``run`` — drive one workload through a configured cluster and print the
  measurement summary.
* ``workloads`` — list the available dataset generators.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import ClusterSpec, DedupClient, open_cluster
from repro.bench import experiments
from repro.bench import ablations
from repro.bench.admission_exp import admission_experiment
from repro.bench.failover_exp import failover_experiment
from repro.bench.gc_exp import gc_reclaim_experiment
from repro.bench.pipeline_profile import pipeline_profile
from repro.bench.sharding_exp import shard_scaling
from repro.bench.slo_exp import DEFAULT_CPU_SCALE, slo_experiment
from repro.core.config import DedupConfig
from repro.workloads import ALL_WORKLOADS, make_workload, parse_tenants

#: Experiment ids accepted by ``experiment`` (paper table/figure numbers).
EXPERIMENTS = {
    "fig1": lambda args: experiments.fig01(target_bytes=args.target_bytes),
    "fig7": lambda args: experiments.fig07(args.workload, target_bytes=args.target_bytes),
    "fig10": lambda args: experiments.fig10(args.workload, target_bytes=args.target_bytes),
    "fig11": lambda args: experiments.fig11(target_bytes=args.target_bytes),
    "fig12": lambda args: experiments.fig12(target_bytes=min(args.target_bytes, 500_000)),
    "fig13a": lambda args: experiments.fig13a(target_bytes=args.target_bytes),
    "fig13b": lambda args: experiments.fig13b(target_bytes=min(args.target_bytes, 800_000)),
    "fig14": lambda args: experiments.fig14(),
    "fig15": lambda args: experiments.fig15(),
    "table2": lambda args: experiments.table2(),
    "ablation-sketch": lambda args: ablations.sketch_sweep(
        args.workload, target_bytes=args.target_bytes
    ),
    "ablation-encoding": lambda args: ablations.encoding_sweep(
        target_bytes=args.target_bytes
    ),
    "ablation-writeback": lambda args: ablations.writeback_capacity_sweep(
        target_bytes=args.target_bytes
    ),
    "ablation-network": lambda args: ablations.network_stack_ablation(
        target_bytes=args.target_bytes
    ),
    "ablation-compaction": lambda args: ablations.compaction_ablation(
        target_bytes=args.target_bytes
    ),
    "pipeline-profile": lambda args: pipeline_profile(
        args.workload, target_bytes=args.target_bytes,
        batch_size=max(args.batch_size, 2),
    ),
    "shard-scaling": lambda args: shard_scaling(
        args.workload, target_bytes=args.target_bytes,
        shard_counts=tuple(
            int(part) for part in args.shard_counts.split(",") if part
        ),
        check_invariants=args.check_invariants,
    ),
    "failover": lambda args: failover_experiment(
        args.workload, target_bytes=args.target_bytes,
        seed=args.seed, crash_fraction=args.crash_fraction,
    ),
    "gc-reclaim": lambda args: gc_reclaim_experiment(
        args.workload, target_bytes=args.target_bytes, seed=args.seed,
    ),
    "admission": lambda args: admission_experiment(
        mix=args.mix, target_bytes=args.target_bytes, seed=args.seed,
    ),
    "slo": lambda args: slo_experiment(
        parse_tenants(args.tenants, target_bytes=args.tenant_bytes),
        seed=args.seed,
        shard_counts=tuple(
            int(part) for part in args.slo_shards.split(",") if part
        ),
        admission_modes=tuple(
            mode for mode in args.admission_modes.split(",") if mode
        ),
        slo_p99_s=args.slo_p99_ms / 1e3,
        cpu_scale=args.cpu_scale,
        rate_search=not args.no_rate_search,
    ),
}


def _add_index_arguments(command: argparse.ArgumentParser) -> None:
    """Feature-index flags shared by run/index-report (IndexSpec surface)."""
    command.add_argument(
        "--index-kind", default="cuckoo", choices=["cuckoo", "tiered"],
        help="feature index: the paper's unbounded cuckoo structure, or "
             "the memory-bounded tiered variant (exact hot tier + "
             "Bloom-banded cold tier)",
    )
    command.add_argument(
        "--index-hot-bytes", type=int, default=None, metavar="BYTES",
        help="tiered: hot-tier byte budget (demotes LRU entries to the "
             "cold tier past it); unset = unbounded",
    )
    command.add_argument(
        "--index-cold-fpp", type=float, default=0.01, metavar="P",
        help="tiered: per-band Bloom false-positive budget",
    )
    command.add_argument(
        "--index-promotion-hits", type=int, default=2, metavar="N",
        help="tiered: cold lookups of a feature before it is promoted "
             "back into the hot tier",
    )


def _index_spec_from_args(args: argparse.Namespace):
    """The :class:`~repro.api.IndexSpec` the index flags describe."""
    from repro.api import IndexSpec

    return IndexSpec(
        kind=args.index_kind,
        hot_bytes_budget=args.index_hot_bytes,
        cold_fpp=args.index_cold_fpp,
        promotion_hits=args.index_promotion_hits,
    )


def _add_obs_arguments(command: argparse.ArgumentParser) -> None:
    """Observability export flags shared by run/trace-replay/experiment."""
    command.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry snapshot (JSON) to PATH",
    )
    command.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable sim-clock tracing and write span trees (JSON) to PATH",
    )
    command.add_argument(
        "--sample-every", default=None, metavar="SPEC",
        help="time-series sampling cadence, e.g. '10s' (simulated "
             "seconds) or '500ops' (client operations)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="dbDedup (SIGMOD 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    exp.add_argument("--workload", default="wikipedia",
                     help="dataset for per-dataset experiments")
    exp.add_argument("--target-bytes", type=int, default=1_000_000,
                     help="raw corpus size to synthesize")
    exp.add_argument("--batch-size", type=int, default=64,
                     help="insert batch size for pipeline-profile")
    exp.add_argument("--shard-counts", default="1,2,4,8", metavar="N,N,...",
                     help="shard counts swept by shard-scaling")
    exp.add_argument("--check-invariants", action="store_true",
                     help="shard-scaling: run the full invariant sweep at "
                          "every sweep point (a violation aborts)")
    exp.add_argument("--seed", type=int, default=7,
                     help="workload + fault seed for the failover scenarios")
    exp.add_argument("--crash-fraction", type=float, default=0.5,
                     help="failover: kill the node this far into the trace")
    exp.add_argument("--mix", default="wikipedia,oltp", metavar="W,W,...",
                     help="admission: comma-separated workload mix whose "
                          "streams the controller classifies independently")
    exp.add_argument("--tenants", default="stackexchange,oltp",
                     metavar="W[:RATE],...",
                     help="slo: comma-separated tenants as "
                          "workload[:rate_ops_s], e.g. "
                          "'stackexchange:60,oltp:60'")
    exp.add_argument("--tenant-bytes", type=int, default=200_000,
                     help="slo: raw corpus size per tenant")
    exp.add_argument("--slo-shards", default="1,2", metavar="N,N,...",
                     help="slo: shard counts swept by the SLO matrix")
    exp.add_argument("--admission-modes", default="inline,hybrid",
                     metavar="M,M,...",
                     help="slo: admission modes swept by the SLO matrix")
    exp.add_argument("--slo-p99-ms", type=float, default=60.0,
                     help="slo: sojourn-p99 target in milliseconds")
    exp.add_argument("--cpu-scale", type=float, default=DEFAULT_CPU_SCALE,
                     help="slo: chunking-CPU scale of the CPU-constrained "
                          "cost model (1.0 = the stock dedicated core)")
    exp.add_argument("--no-rate-search", action="store_true",
                     help="slo: skip the max-sustainable-rate search and "
                          "report the base-rate probes only")
    exp.add_argument("--slo-out", default=None, metavar="PATH",
                     help="slo: write the versioned repro.slo/v1 bundle "
                          "(JSON) to PATH")
    _add_obs_arguments(exp)

    run = sub.add_parser("run", help="run a workload through a cluster")
    run.add_argument("--workload", default="wikipedia",
                     choices=[cls.name for cls in ALL_WORKLOADS])
    run.add_argument("--target-bytes", type=int, default=1_000_000)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--chunk-size", type=int, default=64)
    run.add_argument("--chunker-impl", default="auto",
                     choices=["scalar", "vectorized", "auto"],
                     help="CDC lane: byte-at-a-time oracle, numpy bulk "
                          "sweep, or auto (vectorized when available); "
                          "boundaries are byte-identical either way")
    run.add_argument("--encoding", default="hop",
                     choices=["hop", "backward", "version-jumping", "forward"])
    run.add_argument("--hop-distance", type=int, default=16)
    run.add_argument("--block-compression", default="none",
                     choices=["none", "snappy", "zlib"])
    run.add_argument("--no-dedup", action="store_true",
                     help="disable the dedup engine (baseline)")
    run.add_argument("--trace", default="insert", choices=["insert", "mixed"],
                     help="insert-only load or the mixed read/write trace")
    run.add_argument("--batch-size", type=int, default=1,
                     help="coalesce consecutive inserts into batches of "
                          "this size (1 = per-record inserts)")
    run.add_argument("--shards", type=int, default=1,
                     help="number of hash-routed shards (1 = single "
                          "primary/secondary pair)")
    run.add_argument("--placement", default="hash",
                     choices=["hash", "prefix"],
                     help="shard placement: uniform hash of the record id, "
                          "or locality-preserving entity prefix")
    run.add_argument("--stage-stats", action="store_true",
                     help="also print the per-stage pipeline table")
    run.add_argument("--check-invariants", action="store_true",
                     help="run the full cluster-invariant sweep after the "
                          "workload; non-zero exit on any violation")
    _add_index_arguments(run)
    _add_obs_arguments(run)

    sub.add_parser("workloads", help="list available dataset generators")

    index_report = sub.add_parser(
        "index-report",
        help="run a workload and dump the per-tier feature-index "
             "snapshot (occupancy, bytes/record, false positives)",
    )
    index_report.add_argument("--workload", default="wikipedia",
                              choices=[cls.name for cls in ALL_WORKLOADS])
    index_report.add_argument("--target-bytes", type=int, default=1_000_000)
    index_report.add_argument("--seed", type=int, default=7)
    index_report.add_argument("--chunk-size", type=int, default=64)
    index_report.add_argument("--shards", type=int, default=1)
    index_report.add_argument("--json", action="store_true",
                              help="emit the raw report as JSON instead of "
                                   "the rendered table")
    _add_index_arguments(index_report)

    record = sub.add_parser(
        "trace-record", help="synthesize a workload trace into a file"
    )
    record.add_argument("path", help="output trace file")
    record.add_argument("--workload", default="wikipedia")
    record.add_argument("--target-bytes", type=int, default=1_000_000)
    record.add_argument("--seed", type=int, default=7)
    record.add_argument("--trace", default="insert", choices=["insert", "mixed"])

    replay = sub.add_parser(
        "trace-replay", help="run a recorded trace through a cluster"
    )
    replay.add_argument("path", help="trace file to replay")
    replay.add_argument("--chunk-size", type=int, default=64)
    replay.add_argument("--chunker-impl", default="auto",
                        choices=["scalar", "vectorized", "auto"],
                        help="CDC lane (see run --chunker-impl)")
    replay.add_argument("--encoding", default="hop",
                        choices=["hop", "backward", "version-jumping", "forward"])
    replay.add_argument("--block-compression", default="none",
                        choices=["none", "snappy", "zlib"])
    replay.add_argument("--no-dedup", action="store_true")
    replay.add_argument("--check-invariants", action="store_true",
                        help="run the full cluster-invariant sweep after the "
                             "replay; non-zero exit on any violation")
    _add_obs_arguments(replay)

    cleanup = sub.add_parser(
        "cleanup",
        help="run a workload, delete a slice of it, then run the "
             "rollback-safe GC batch (plan -> dry-run -> apply -> "
             "post-validate) and report what it reclaimed",
    )
    cleanup.add_argument("--workload", default="wikipedia",
                         choices=[cls.name for cls in ALL_WORKLOADS])
    cleanup.add_argument("--target-bytes", type=int, default=1_000_000)
    cleanup.add_argument("--seed", type=int, default=7)
    cleanup.add_argument("--chunk-size", type=int, default=64)
    cleanup.add_argument("--shards", type=int, default=1)
    cleanup.add_argument("--delete-fraction", type=float, default=0.25,
                         metavar="F",
                         help="delete this fraction of inserted records "
                              "before collecting (creates the tombstones "
                              "GC reclaims)")
    cleanup.add_argument("--max-batch-records", type=int, default=None,
                         metavar="N",
                         help="cap on dependents re-encoded in the batch "
                              "(default: the config's gc_max_batch_records)")
    cleanup.add_argument("--dry-run", action="store_true",
                         help="print the GC plan (reclaimable bytes, chains "
                              "to re-root, pages to compact) without "
                              "touching the store; non-zero exit when "
                              "post-validation would fail")
    cleanup.add_argument("--check-invariants", action="store_true",
                         help="run the full cluster-invariant sweep after "
                              "the batch; non-zero exit on any violation")

    audit = sub.add_parser(
        "audit",
        help="run a workload and query the per-record dedup audit trail "
             "(decision reason, source, similarity, bytes saved)",
    )
    audit.add_argument("--workload", default="wikipedia",
                       choices=[cls.name for cls in ALL_WORKLOADS])
    audit.add_argument("--target-bytes", type=int, default=1_000_000)
    audit.add_argument("--seed", type=int, default=7)
    audit.add_argument("--chunk-size", type=int, default=64)
    audit.add_argument("--shards", type=int, default=1)
    audit.add_argument("--database", default=None,
                       help="only entries for this logical database")
    audit.add_argument("--reason", default=None,
                       help="only entries with this decision reason "
                            "(e.g. 'deduped', 'no_candidate')")
    audit.add_argument("--limit", type=int, default=10,
                       help="most recent entries to print per shard "
                            "(0 = summary only)")
    audit.add_argument("--json", action="store_true",
                       help="emit the raw report as JSON instead of the "
                            "rendered summary")

    check = sub.add_parser(
        "check-metrics",
        help="validate an exported metrics JSON file (schema + "
             "reconciliation identities); non-zero exit on any problem",
    )
    check.add_argument("path", help="metrics JSON file to check")

    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument("--out", default="results.md", help="output file")
    report.add_argument("--target-bytes", type=int, default=800_000,
                        help="corpus scale per dataset")
    return parser


def _run_invariant_sweep(cluster) -> int:
    """Run the matching invariant sweep, print it, return an exit code."""
    from repro.db.invariants import check_cluster, check_sharded_cluster
    from repro.db.sharding import ShardedCluster

    if isinstance(cluster, ShardedCluster):
        report = check_sharded_cluster(cluster, strict=False)
    else:
        report = check_cluster(cluster, strict=False)
    print(report.summary())
    return 0 if report.ok else 1


def _sample_cadence(args: argparse.Namespace) -> tuple[float | None, int | None]:
    """Parse ``--sample-every`` into (seconds, ops), both None when unset."""
    if not args.sample_every:
        return None, None
    from repro.obs import parse_sample_every

    return parse_sample_every(args.sample_every)


def _open_observed_client(
    spec: ClusterSpec, args: argparse.Namespace
) -> DedupClient:
    """Open the spec with tracing/sampling switched on per the obs flags."""
    sample_s, sample_ops = _sample_cadence(args)
    return open_cluster(
        spec,
        trace=args.trace_out is not None,
        sample_every_s=sample_s,
        sample_every_ops=sample_ops,
    )


def _export_observability(
    cluster, args: argparse.Namespace, meta: dict
) -> None:
    """Write the metrics/trace documents the obs flags asked for."""
    if args.metrics_out:
        from repro.obs import write_metrics_json

        write_metrics_json(
            args.metrics_out, cluster.registry,
            sampler=cluster.sampler, meta=meta,
        )
        print(f"wrote metrics to {args.metrics_out}")
    if args.trace_out:
        from repro.obs import write_trace_json

        write_trace_json(args.trace_out, cluster.tracer)
        print(f"wrote trace to {args.trace_out}")


def _export_slo_bundle(result, args: argparse.Namespace) -> None:
    """Write the ``repro.slo/v1`` bundle when ``--slo-out`` asked for it."""
    if not getattr(args, "slo_out", None):
        return
    if not hasattr(result, "document"):
        print(f"--slo-out ignored: experiment {args.id!r} exports no bundle")
        return
    from repro.obs import write_json

    write_json(args.slo_out, result.document())
    print(f"wrote SLO bundle to {args.slo_out}")


def command_experiment(args: argparse.Namespace) -> int:
    """Run one experiment id and print its rendered result.

    With any observability flag set, an ambient capture collects every
    cluster the experiment builds; the export then bundles one metrics
    document per cluster (``repro.metrics-set/v1``).
    """
    if not (args.metrics_out or args.trace_out or args.sample_every):
        result = EXPERIMENTS[args.id](args)
        print(result.render())
        _export_slo_bundle(result, args)
        return 0

    from repro.obs import runtime as obs_runtime

    sample_s, sample_ops = _sample_cadence(args)
    with obs_runtime.capture(
        trace=args.trace_out is not None,
        sample_seconds=sample_s,
        sample_ops=sample_ops,
    ) as cap:
        result = EXPERIMENTS[args.id](args)
    print(result.render())
    _export_slo_bundle(result, args)
    if args.metrics_out:
        from repro.obs import metrics_set_document, write_json

        document = metrics_set_document(
            [
                (label, cluster.registry, cluster.sampler)
                for label, cluster in cap.clusters
            ],
            meta={"experiment": args.id, "workload": args.workload},
        )
        write_json(args.metrics_out, document)
        print(
            f"wrote metrics for {len(cap.clusters)} runs to "
            f"{args.metrics_out}"
        )
    if args.trace_out:
        from repro.obs import trace_set_document, write_json

        write_json(
            args.trace_out,
            trace_set_document(
                [(label, cluster.tracer) for label, cluster in cap.clusters]
            ),
        )
        print(f"wrote traces to {args.trace_out}")
    return 0


def _drop_breakdown(registry) -> dict[str, dict[str, int]]:
    """Engine-wide pipeline drops grouped stream -> reason -> count.

    Reads the ``pipeline_drops_total`` family's ``scope="_total"`` rows
    (per-database scopes would double-count); the ``shard`` label the
    merged registry adds on sharded topologies is folded away.
    """
    snapshot = registry.snapshot()
    family = snapshot.get("pipeline_drops_total")
    streams: dict[str, dict[str, int]] = {}
    if not isinstance(family, dict):
        return streams
    for row in family.get("values", []):
        labels = row.get("labels", {})
        if labels.get("scope") != "_total":
            continue
        stream = labels.get("stream", "_all")
        reason = labels.get("reason", "")
        per_stream = streams.setdefault(stream, {})
        per_stream[reason] = per_stream.get(reason, 0) + int(row["value"])
    return streams


def command_run(args: argparse.Namespace) -> int:
    """Run one workload through a configured deployment; print the summary."""
    spec = ClusterSpec(
        dedup=DedupConfig(
            chunk_size=args.chunk_size,
            chunker_impl=args.chunker_impl,
            encoding=args.encoding,
            hop_distance=args.hop_distance,
        ),
        dedup_enabled=not args.no_dedup,
        index=_index_spec_from_args(args),
        block_compression=args.block_compression,
        insert_batch_size=args.batch_size,
        shards=args.shards,
        placement=args.placement,
    )
    client = _open_observed_client(spec, args)
    cluster = client.cluster
    workload = make_workload(args.workload, seed=args.seed,
                             target_bytes=args.target_bytes)
    trace = workload.insert_trace() if args.trace == "insert" else workload.mixed_trace()
    result = client.run(trace)

    print(f"workload:           {args.workload} (seed {args.seed})")
    if client.shards > 1:
        print(f"shards:             {client.shards} "
              f"(placement: {args.placement})")
    print(f"operations:         {result.operations} "
          f"({result.inserts} inserts, {result.reads} reads)")
    print(f"raw corpus:         {result.logical_bytes / 1e6:.2f} MB")
    print(f"stored (dedup):     {result.stored_bytes / 1e6:.2f} MB "
          f"({result.storage_compression_ratio:.2f}x)")
    print(f"stored (physical):  {result.physical_bytes / 1e6:.2f} MB "
          f"({result.physical_compression_ratio:.2f}x)")
    print(f"replicated:         {result.network_bytes / 1e6:.2f} MB "
          f"({result.network_compression_ratio:.2f}x)")
    print(f"index memory:       {result.index_memory_bytes / 1024:.1f} KB")
    print(f"throughput:         {result.throughput_ops:.0f} ops/s (simulated)")
    print(f"latency p50/p99.9:  {result.latency_percentile(50) * 1e3:.2f} / "
          f"{result.latency_percentile(99.9) * 1e3:.2f} ms")
    print(f"replicas converged: {client.replicas_converged()}")
    drops = _drop_breakdown(client.registry)
    if drops:
        total = int(sum(sum(per.values()) for per in drops.values()))
        print(f"pipeline drops:     {total}")
        for stream in sorted(drops):
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(drops[stream].items())
            )
            print(f"  {stream}: {reasons}")
    if client.shards > 1:
        stats = client.stats()
        print(f"cross-shard misses: {stats['cross_shard_misses']} "
              f"(forfeited dedup opportunities)")
        for index, shard_stats in enumerate(stats["per_shard"]):
            print(f"  shard {index}:          "
                  f"{shard_stats['records']} records, "
                  f"{shard_stats['storage_compression_ratio']:.2f}x storage, "
                  f"{shard_stats['network_compression_ratio']:.2f}x network")
    else:
        if cluster.primary.engine is not None:
            source_cache = cluster.primary.engine.source_cache
            print(f"source cache:       {source_cache.hits} hits / "
                  f"{source_cache.misses} misses / "
                  f"{source_cache.evictions} evictions")
        writeback = cluster.primary.db.writeback_cache
        print(f"write-back cache:   {writeback.flushed} flushed / "
              f"{writeback.discarded} discarded / "
              f"{writeback.invalidated} invalidated "
              f"(savings lost {writeback.discarded_savings / 1e3:.1f} KB)")
        if args.stage_stats and cluster.primary.engine is not None:
            print()
            print(cluster.primary.engine.describe_pipeline())
    _export_observability(
        cluster, args,
        meta={"command": "run", "workload": args.workload,
              "seed": args.seed, "target_bytes": args.target_bytes},
    )
    if args.check_invariants:
        return _run_invariant_sweep(cluster)
    return 0


def command_index_report(args: argparse.Namespace) -> int:
    """Run a workload and dump the per-tier feature-index snapshot."""
    import json

    spec = ClusterSpec(
        dedup=DedupConfig(chunk_size=args.chunk_size),
        index=_index_spec_from_args(args),
        shards=args.shards,
    )
    client = open_cluster(spec)
    workload = make_workload(args.workload, seed=args.seed,
                             target_bytes=args.target_bytes)
    client.run(workload.insert_trace())
    report = client.index_report()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    for shard, body in sorted(report["shards"].items()):
        kind = body.get("kind")
        if kind is None:
            print(f"shard {shard}: dedup disabled (no index)")
            continue
        print(f"shard {shard}: kind={kind}  maintenance cpu "
              f"{body['maintenance_cpu_seconds'] * 1e3:.2f} ms")
        for database, part in sorted(body["partitions"].items()):
            budget = part["hot_bytes_budget"]
            budget_text = f"{budget}" if budget is not None else "unbounded"
            print(f"  {database}:")
            print(f"    hot:  {part['hot_entries']} entries, "
                  f"{part['hot_bytes']} B (budget {budget_text})")
            print(f"    cold: {part['cold_records']} record refs, "
                  f"{part['cold_bytes']} B across "
                  f"{part['cold_bands_materialized']} band(s)")
            print(f"    bytes/record: {part['bytes_per_record']:.2f}")
            print(f"    lookups: {part['lookups']} = "
                  f"{part['hot_hits']} hot + {part['cold_hits']} cold + "
                  f"{part['misses']} miss; "
                  f"{part['cold_false_positives']} cold false positives")
            print(f"    demotions: {part['demotions']}  "
                  f"promotions: {part['promotions']}")
    return 0


def command_workloads() -> int:
    """List the available dataset generators."""
    from repro.workloads import EXTRA_WORKLOADS

    for cls in ALL_WORKLOADS + EXTRA_WORKLOADS:
        print(f"{cls.name:15s} {cls.__doc__.strip().splitlines()[0]}")
    return 0


def command_trace_record(args: argparse.Namespace) -> int:
    """Synthesize a workload trace and write it to a file."""
    from repro.workloads.trace_io import save_trace

    workload = make_workload(args.workload, seed=args.seed,
                             target_bytes=args.target_bytes)
    trace = (
        workload.insert_trace() if args.trace == "insert"
        else workload.mixed_trace()
    )
    size = save_trace(trace, args.path)
    print(f"wrote {size / 1e6:.2f} MB trace to {args.path}")
    return 0


def command_trace_replay(args: argparse.Namespace) -> int:
    """Replay a recorded trace through a cluster; print the outcome."""
    from repro.workloads.trace_io import load_trace_file

    spec = ClusterSpec(
        dedup=DedupConfig(
            chunk_size=args.chunk_size,
            chunker_impl=args.chunker_impl,
            encoding=args.encoding,
        ),
        dedup_enabled=not args.no_dedup,
        block_compression=args.block_compression,
    )
    client = _open_observed_client(spec, args)
    cluster = client.cluster
    result = client.run(load_trace_file(args.path))
    print(f"replayed {result.operations} operations from {args.path}")
    print(f"storage: {result.storage_compression_ratio:.2f}x  "
          f"network: {result.network_compression_ratio:.2f}x  "
          f"converged: {client.replicas_converged()}")
    _export_observability(
        cluster, args, meta={"command": "trace-replay", "path": args.path},
    )
    if args.check_invariants:
        return _run_invariant_sweep(cluster)
    return 0


def _deleted_workload_client(args: argparse.Namespace) -> DedupClient:
    """Shared cleanup/audit setup: load a corpus, delete a slice of it."""
    spec = ClusterSpec(
        dedup=DedupConfig(chunk_size=args.chunk_size),
        shards=args.shards,
    )
    client = open_cluster(spec)
    workload = make_workload(args.workload, seed=args.seed,
                             target_bytes=args.target_bytes)
    trace = list(workload.insert_trace())
    client.run(trace)
    fraction = getattr(args, "delete_fraction", 0.0)
    if fraction > 0:
        inserted = [op for op in trace if op.kind == "insert"]
        step = max(1, round(1 / max(fraction, 1e-9)))
        for op in inserted[::step]:
            client.delete(op.database, op.record_id)
        client.finalize()
    return client


def command_cleanup(args: argparse.Namespace) -> int:
    """Run the operator-initiated GC batch; non-zero exit on rollback."""
    from repro.db.invariants import check_database

    client = _deleted_workload_client(args)
    report = client.cleanup(
        dry_run=args.dry_run, max_records=args.max_batch_records
    )
    exit_code = 0
    for shard, body in sorted(report["shards"].items()):
        print(f"shard {shard}:")
        if args.dry_run:
            plan = body["plan"]
            for line in plan.describe().splitlines():
                print(f"  {line}")
            continue
        batch = body["report"]
        print(f"  outcome           : {batch.outcome}")
        print(f"  chains re-rooted  : {batch.reroots_applied} "
              f"({batch.promotions} promoted to raw)")
        print(f"  tombstones removed: {batch.tombstones_removed}")
        print(f"  reclaimed bytes   : {batch.reclaimed_bytes}")
        print(f"  pages freed       : {batch.pages_freed} "
              f"({batch.compaction_bytes_moved} bytes migrated)")
        print(f"  background cpu    : {batch.cpu_seconds * 1e3:.2f} ms")
        if batch.violations:
            for violation in batch.violations:
                print(f"  POST-VALIDATION: {violation}")
            exit_code = 1
    if args.dry_run:
        # A batch only fails post-validation (and rolls back) when the
        # store already violates its invariants — the prepared payloads
        # are decode-checked during planning. Surface that prediction.
        for index, primary in enumerate(_cluster_primaries(client.cluster)):
            sweep = check_database(primary.db, node=f"shard{index}")
            if not sweep.ok:
                for violation in sweep.violations:
                    print(f"WOULD FAIL POST-VALIDATION: {violation}")
                exit_code = 1
    if args.check_invariants:
        invariant_code = _run_invariant_sweep(client.cluster)
        exit_code = exit_code or invariant_code
    return exit_code


def _cluster_primaries(cluster) -> list:
    """Shard primaries of either topology (plain cluster = one shard)."""
    from repro.db.sharding import ShardedCluster

    if isinstance(cluster, ShardedCluster):
        return [shard.primary for shard in cluster.shards]
    return [cluster.primary]


def command_audit(args: argparse.Namespace) -> int:
    """Run a workload and print the dedup audit trail."""
    import json
    from dataclasses import asdict

    client = _deleted_workload_client(args)
    report = client.audit_report(
        database=args.database, reason=args.reason,
        limit=args.limit if args.limit > 0 else None,
    )
    if args.json:
        payload = {
            "shards": {
                str(shard): {
                    "summary": body["summary"],
                    "entries": [asdict(entry) for entry in body["entries"]],
                }
                for shard, body in report["shards"].items()
            }
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for shard, body in sorted(report["shards"].items()):
        summary = body["summary"]
        if summary is None:
            print(f"shard {shard}: dedup disabled (no audit trail)")
            continue
        print(f"shard {shard}: {summary['records']} records audited "
              f"({summary['rebuilt']} rebuilt from the oplog)")
        print(f"  raw bytes   : {summary['raw_bytes']}")
        print(f"  saved bytes : {summary['saved_bytes']}")
        print(f"  mean similarity (deduped): {summary['mean_similarity']:.2f}")
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(summary["reasons"].items())
        )
        print(f"  reasons     : {reasons}")
        if args.limit > 0 and body["entries"]:
            print("  most recent entries:")
            for entry in body["entries"]:
                source = (
                    f" source={entry.source_id} "
                    f"similarity={entry.similarity}"
                    if entry.source_id is not None else ""
                )
                print(f"    {entry.database}/{entry.record_id}: "
                      f"{entry.reason} raw={entry.raw_size} "
                      f"saved={entry.saved_bytes}{source}")
    return 0


def command_check_metrics(args: argparse.Namespace) -> int:
    """Validate an exported metrics file; print problems, exit non-zero."""
    import json

    from repro.obs import check_metrics_payload

    try:
        with open(args.path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read {args.path}: {error}")
        return 1
    problems = check_metrics_payload(payload)
    for problem in problems:
        print(f"PROBLEM: {problem}")
    if problems:
        print(f"{args.path}: {len(problems)} problem(s)")
        return 1
    print(f"{args.path}: ok")
    return 0


def command_report(args: argparse.Namespace) -> int:
    """Regenerate every experiment into one markdown report file."""
    from repro.bench.full_report import write_report

    size = write_report(args.out, target_bytes=args.target_bytes)
    print(f"wrote {size / 1024:.0f} KB report to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "experiment":
        return command_experiment(args)
    if args.command == "run":
        return command_run(args)
    if args.command == "workloads":
        return command_workloads()
    if args.command == "index-report":
        return command_index_report(args)
    if args.command == "trace-record":
        return command_trace_record(args)
    if args.command == "trace-replay":
        return command_trace_replay(args)
    if args.command == "cleanup":
        return command_cleanup(args)
    if args.command == "audit":
        return command_audit(args)
    if args.command == "check-metrics":
        return command_check_metrics(args)
    if args.command == "report":
        return command_report(args)
    return 1  # pragma: no cover — argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
