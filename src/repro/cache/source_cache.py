"""Source record cache (§3.3.1).

Delta compression needs the *source* record's bytes; fetching them from
disk would contend with client queries. The cache exploits the temporal
locality of dedup-friendly workloads — updates to an article / thread /
mailbox cluster in time — by retaining, per encoding chain, exactly the
records a future encode is likely to need:

* the chain tail (the most recent record), replaced in place whenever the
  chain grows, and
* the latest hop base of each hop level, so hop-base re-encodings also hit.

Everything else follows plain byte-budget LRU. The cache's hit ratio is
what Fig. 13a measures against the cache-aware selection reward score.
"""

from __future__ import annotations

from repro.cache.lru import LRUByteCache

#: Paper configuration: "a small source record cache (32 MB)".
DEFAULT_CAPACITY_BYTES = 32 * 1024 * 1024


class SourceRecordCache:
    """Record-id → raw content cache with chain-aware replacement."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES) -> None:
        self._lru = LRUByteCache(capacity_bytes)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hits(self) -> int:
        """Number of lookups served from the cache."""
        return self._lru.hits

    @property
    def misses(self) -> int:
        """Number of lookups that fell through to storage."""
        return self._lru.misses

    @property
    def evictions(self) -> int:
        """Entries the byte budget pushed out."""
        return self._lru.evictions

    @property
    def miss_ratio(self) -> float:
        """Fraction of lookups that missed (0.0 when never queried)."""
        return self._lru.miss_ratio

    @property
    def used_bytes(self) -> int:
        """Bytes currently held by cached entries."""
        return self._lru.used_bytes

    def get(self, record_id: str) -> bytes | None:
        """Fetch a cached record's raw content (counts hit/miss)."""
        return self._lru.get(record_id)

    def peek(self, record_id: str) -> bytes | None:
        """Fetch without touching recency or hit/miss counters (decode path)."""
        return self._lru.peek(record_id)

    def admit(self, record_id: str, content: bytes) -> None:
        """Cache a record fetched from storage or freshly inserted."""
        self._lru.put(record_id, content)

    def replace_tail(self, old_tail: str, new_tail: str, content: bytes) -> None:
        """Chain grew: the old tail's slot is taken over by the new tail.

        §3.3.1: "if dbDedup identifies a similar record in the cache ...
        it replaces the existing record with the new one." Replacing rather
        than adding keeps exactly one non-hop-base entry per chain.
        """
        self._lru.pop(old_tail)
        self._lru.put(new_tail, content)

    def keep_hop_base(self, record_id: str, content: bytes, replacing: str | None) -> None:
        """Cache the latest hop base of a level, dropping the one it replaces."""
        if replacing is not None:
            self._lru.pop(replacing)
        self._lru.put(record_id, content)

    def invalidate(self, record_id: str) -> None:
        """Drop a record (its raw content changed or it was deleted)."""
        self._lru.pop(record_id)
