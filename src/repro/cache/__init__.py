"""Caches specialized for delta-encoded storage (§3.3)."""

from repro.cache.lru import LRUByteCache
from repro.cache.source_cache import SourceRecordCache
from repro.cache.writeback import LossyWriteBackCache, WriteBackEntry

__all__ = [
    "LRUByteCache",
    "SourceRecordCache",
    "LossyWriteBackCache",
    "WriteBackEntry",
]
