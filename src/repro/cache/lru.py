"""Byte-budgeted LRU cache — the base mechanism under the source cache."""

from __future__ import annotations

from collections import OrderedDict


class LRUByteCache:
    """LRU cache whose capacity is a byte budget, not an entry count.

    Values must be ``bytes``-like; each entry's cost is ``len(value)``.
    Oversized values (bigger than the whole budget) are rejected rather
    than evicting everything else.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 1:
            raise ValueError(f"capacity_bytes must be >= 1, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        #: Entries pushed out by the byte budget (explicit ``pop`` calls
        #: and same-key replacements do not count).
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> int:
        """Bytes currently held by cached entries."""
        return self._used

    @property
    def miss_ratio(self) -> float:
        """Fraction of lookups that missed (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def get(self, key: str) -> bytes | None:
        """Return the cached value and refresh recency, or None on miss."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: str) -> bytes | None:
        """Like :meth:`get` but touches neither recency nor counters."""
        return self._entries.get(key)

    def put(self, key: str, value: bytes) -> bool:
        """Insert/replace ``key``; returns False if the value cannot fit."""
        if len(value) > self.capacity_bytes:
            self.pop(key)
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self._used -= len(old)
        self._entries[key] = value
        self._used += len(value)
        while self._used > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._used -= len(evicted)
            self.evictions += 1
        return True

    def pop(self, key: str) -> bytes | None:
        """Remove and return ``key``'s value, or None if absent."""
        value = self._entries.pop(key, None)
        if value is not None:
            self._used -= len(value)
        return value

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
        self._used = 0
