"""Lossy write-back delta cache (§3.3.2).

Backward encoding turns every insert into *two* writes: the new record and
the re-encoded source. The second write is special — skipping it loses
nothing but compression, because the source record's full content stays on
disk until the delta replaces it. dbDedup exploits that "lossy" property:

* deltas wait in this cache instead of being written immediately;
* they are flushed only when the disk is relatively idle (the database
  polls the simulated I/O queue length);
* entries are prioritized by the absolute space saving they realize, so
  when memory runs out the *least* valuable delta is discarded, and when
  I/O goes idle the *most* valuable delta is flushed first.

Discarding an entry is always safe: the affected record simply remains
stored raw.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field


#: Paper configuration: "lossy write-back cache (8 MB)".
DEFAULT_CAPACITY_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class WriteBackEntry:
    """One pending write-back: replace ``record_id``'s payload with a delta.

    Attributes:
        record_id: the (older) record to be re-encoded on disk.
        base_id: the record the delta decodes from.
        payload: serialized backward delta.
        space_saving: bytes saved if this write-back is applied — the
            record's current stored size minus ``len(payload)``.
    """

    record_id: str
    base_id: str
    payload: bytes
    space_saving: int


@dataclass(order=True)
class _HeapItem:
    # Min-heap by saving: the root is the *least* valuable entry, which is
    # both the eviction victim and the last to flush.
    space_saving: int
    tiebreak: int
    entry: WriteBackEntry = field(compare=False)
    stale: bool = field(default=False, compare=False)


class LossyWriteBackCache:
    """Bounded cache of pending backward-delta write-backs.

    While an entry is pending, its *base* record must not be rewritten —
    the delta was computed against the base's current bytes. The cache
    therefore notifies its owner whenever an entry leaves *without* being
    flushed (``on_drop``), so the owner can release the pending reference
    it acquired on the base when scheduling.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES) -> None:
        if capacity_bytes < 1:
            raise ValueError(f"capacity_bytes must be >= 1, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._by_record: dict[str, _HeapItem] = {}
        self._heap: list[_HeapItem] = []
        self._used = 0
        self._counter = itertools.count()
        self.discarded = 0
        self.discarded_savings = 0
        self.flushed = 0
        #: Entries removed because the record was updated/deleted or a
        #: newer delta superseded them (distinct from capacity discards).
        self.invalidated = 0
        #: Called with each entry discarded or invalidated (not flushed).
        self.on_drop = None

    def __len__(self) -> int:
        return len(self._by_record)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._by_record

    def pending_base_of(self, record_id: str) -> str | None:
        """The base the pending entry for ``record_id`` decodes from."""
        item = self._by_record.get(record_id)
        return item.entry.base_id if item is not None else None

    def pending_entries(self) -> list[WriteBackEntry]:
        """Snapshot of every queued entry (invariant checking / inspection)."""
        return [item.entry for item in self._by_record.values()]

    @property
    def used_bytes(self) -> int:
        """Bytes currently held by cached entries."""
        return self._used

    def put(self, entry: WriteBackEntry) -> None:
        """Queue a write-back, displacing least-valuable entries if needed.

        A newer delta for the same record replaces the old one (only the
        latest backward encoding is meaningful). Entries whose payload
        exceeds the whole budget are dropped immediately — recorded as a
        discard, exactly as a capacity eviction would be.
        """
        self.invalidate(entry.record_id)
        if len(entry.payload) > self.capacity_bytes:
            self.discarded += 1
            self.discarded_savings += entry.space_saving
            self._notify_drop(entry)
            return
        item = _HeapItem(entry.space_saving, next(self._counter), entry)
        self._by_record[entry.record_id] = item
        heapq.heappush(self._heap, item)
        self._used += len(entry.payload)
        while self._used > self.capacity_bytes:
            victim = self._pop_least_valuable()
            if victim is None:
                break
            self.discarded += 1
            self.discarded_savings += victim.space_saving
            self._notify_drop(victim)

    def invalidate(self, record_id: str) -> WriteBackEntry | None:
        """Remove a pending write-back (client updated/deleted the record,
        or a newer delta supersedes it); the drop callback fires.

        §4.1: "dbDedup always checks the cache for each update. If it finds
        a record with the same ID ... it invalidates the entry and proceeds
        normally."
        """
        entry = self._remove(record_id)
        if entry is not None:
            self.invalidated += 1
            self._notify_drop(entry)
        return entry

    def flush_most_valuable(self) -> WriteBackEntry | None:
        """Remove and return the highest-saving entry (None when empty).

        Flushing is not a drop: the caller applies the entry and is
        responsible for releasing the pending base reference afterwards.
        """
        best: _HeapItem | None = None
        for item in self._by_record.values():
            if best is None or item.space_saving > best.space_saving:
                best = item
        if best is None:
            return None
        entry = self._remove(best.entry.record_id)
        if entry is not None:
            self.flushed += 1
        return entry

    def _remove(self, record_id: str) -> WriteBackEntry | None:
        item = self._by_record.pop(record_id, None)
        if item is None:
            return None
        item.stale = True
        self._used -= len(item.entry.payload)
        return item.entry

    def _notify_drop(self, entry: WriteBackEntry) -> None:
        if self.on_drop is not None:
            self.on_drop(entry)

    def drain(self) -> list[WriteBackEntry]:
        """Flush everything, most valuable first (used at shutdown/idle).

        Like :meth:`flush_most_valuable`, drained entries do not fire the
        drop callback — the caller applies them.
        """
        entries = []
        while True:
            entry = self.flush_most_valuable()
            if entry is None:
                return entries
            entries.append(entry)

    def _pop_least_valuable(self) -> WriteBackEntry | None:
        while self._heap:
            item = heapq.heappop(self._heap)
            if item.stale:
                continue
            del self._by_record[item.entry.record_id]
            self._used -= len(item.entry.payload)
            return item.entry
        return None
