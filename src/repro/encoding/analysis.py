"""Closed-form cost model of the encoding schemes — Table 2 of the paper.

For an encoding chain of ``N`` records with hop distance / cluster size
``H``, base-record size ``Sb`` and delta size ``Sd`` (``Sb >> Sd``):

===================  =====================  ======================  =====================
Scheme               Storage                Worst-case retrievals   Writebacks
===================  =====================  ======================  =====================
Backward             ``Sb + (N-1) Sd``      ``N``                   ``N``
Version jumping      ``N/H Sb + (N-N/H)Sd`` ``H``                   ``N - N/H``
Hop encoding         ``Sb + (N-1) Sd``      ``H + log_H N``         ``N + N H/(H-1)^2``
===================  =====================  ======================  =====================

The paper labels these "general notation for ease of reasoning" — they are
asymptotic approximations, not exact counts. The functions here return the
paper's formulas; ``tests/encoding/test_analysis.py`` checks that the exact
counts measured from :mod:`repro.encoding.policies` track them (same
ordering, same growth direction), which is precisely the claim Fig. 14
makes empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class EncodingCosts:
    """Predicted costs of one scheme on one chain configuration."""

    scheme: str
    storage_bytes: float
    worst_case_retrievals: float
    writebacks: float


def backward_costs(n: int, base_size: float, delta_size: float) -> EncodingCosts:
    """Table 2, row 1: standard backward encoding."""
    _validate(n, 2, base_size, delta_size)
    return EncodingCosts(
        scheme="backward",
        storage_bytes=base_size + (n - 1) * delta_size,
        worst_case_retrievals=float(n),
        writebacks=float(n),
    )


def version_jumping_costs(
    n: int, hop_distance: int, base_size: float, delta_size: float
) -> EncodingCosts:
    """Table 2, row 2: version jumping with cluster size ``H``."""
    _validate(n, hop_distance, base_size, delta_size)
    references = n / hop_distance
    return EncodingCosts(
        scheme="version-jumping",
        storage_bytes=references * base_size + (n - references) * delta_size,
        worst_case_retrievals=float(hop_distance),
        writebacks=n - references,
    )


def hop_costs(
    n: int, hop_distance: int, base_size: float, delta_size: float
) -> EncodingCosts:
    """Table 2, row 3: hop encoding with hop distance ``H``."""
    _validate(n, hop_distance, base_size, delta_size)
    h = hop_distance
    return EncodingCosts(
        scheme="hop",
        storage_bytes=base_size + (n - 1) * delta_size,
        worst_case_retrievals=h + math.log(n, h),
        writebacks=n + n * h / (h - 1) ** 2,
    )


def measured_decode_costs(base_pointers: dict[str, str | None]) -> dict[str, int]:
    """Exact decode cost (number of base retrievals) per record.

    Args:
        base_pointers: record id → its decode base (None for raw records).

    Returns:
        For each record, how many records must be fetched to reconstruct
        it, counting the raw record at the end of the pointer walk but not
        the record itself.

    Raises:
        ValueError: if the pointer graph contains a cycle.
    """
    costs: dict[str, int] = {}

    def walk(record: str, seen: set[str]) -> int:
        if record in costs:
            return costs[record]
        base = base_pointers[record]
        if base is None:
            costs[record] = 0
            return 0
        if record in seen:
            raise ValueError(f"cycle in base pointers at {record!r}")
        seen.add(record)
        costs[record] = 1 + walk(base, seen)
        return costs[record]

    for record in base_pointers:
        walk(record, set())
    return costs


def _validate(n: int, h: int, base_size: float, delta_size: float) -> None:
    if n < 1:
        raise ValueError(f"chain length must be >= 1, got {n}")
    if h < 2:
        raise ValueError(f"hop distance must be >= 2, got {h}")
    if base_size <= 0 or delta_size <= 0:
        raise ValueError("sizes must be positive")
