"""Encoding-chain management: two-way, backward, hop, version jumping (§3.2).

The *policy* classes decide, whenever a chain gains a record, which older
records must be (re)encoded against which bases — the write-back plan. The
:class:`~repro.encoding.chain.ChainRegistry` tracks chain membership so the
policies can reason in positions while the database reasons in record ids.
:mod:`repro.encoding.analysis` carries Table 2's closed-form cost model.
"""

from repro.encoding.chain import ChainRegistry, ReencodeAction
from repro.encoding.policies import (
    BackwardEncodingPolicy,
    EncodingPolicy,
    HopEncodingPolicy,
    VersionJumpingPolicy,
    make_policy,
)
from repro.encoding.analysis import EncodingCosts, hop_costs, version_jumping_costs, backward_costs

__all__ = [
    "ChainRegistry",
    "ReencodeAction",
    "EncodingPolicy",
    "BackwardEncodingPolicy",
    "HopEncodingPolicy",
    "VersionJumpingPolicy",
    "make_policy",
    "EncodingCosts",
    "backward_costs",
    "version_jumping_costs",
    "hop_costs",
]
