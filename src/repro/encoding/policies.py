"""Write-back planning policies: backward, hop, version jumping (§3.2).

A policy answers one question: *when a chain grows to position n, which
older positions must be (re)encoded, and against which base?* The database
turns the returned :class:`~repro.encoding.chain.ReencodeAction` objects
into lossy write-back cache entries.

* :class:`BackwardEncodingPolicy` — plain backward encoding: the previous
  tail is always re-encoded against the new tail. Best ratio, O(N)
  worst-case decode.
* :class:`VersionJumpingPolicy` — prior work's fix: every ``H``-th record
  (the *reference version*) stays raw, bounding decode chains to ``H`` at
  the cost of storing ``N/H`` full records.
* :class:`HopEncodingPolicy` — the paper's contribution: hop bases at
  positions divisible by ``H^level`` are encoded against the base one hop
  ahead at their level (Fig. 6), so *every* record is stored as a delta yet
  decode cost stays near version jumping's.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.encoding.chain import ReencodeAction

#: Paper default: "we find that a hop distance of 16 (default) provides a
#: good trade-off between compression ratio and decoding overhead."
DEFAULT_HOP_DISTANCE = 16


class EncodingPolicy(ABC):
    """Strategy deciding storage-side re-encodings on chain growth."""

    @abstractmethod
    def plan_extend(self, records: list[str], new_position: int) -> list[ReencodeAction]:
        """Actions to apply when ``records[new_position]`` just arrived.

        Args:
            records: the chain's record ids in write order, already
                including the new record.
            new_position: index of the new record (``len(records) - 1``
                for linear growth).
        """

    def hop_levels(self, chain_length: int) -> int:
        """Number of hop levels a chain of this length uses (0 if none)."""
        return 0


class BackwardEncodingPolicy(EncodingPolicy):
    """Standard backward encoding: previous tail re-encodes against new tail."""

    def plan_extend(self, records: list[str], new_position: int) -> list[ReencodeAction]:
        if new_position == 0:
            return []
        return [ReencodeAction(records[new_position - 1], records[new_position])]


class VersionJumpingPolicy(EncodingPolicy):
    """Version jumping with cluster size ``H`` (§3.2.2, prior work).

    Reference versions — the last record of each ``H``-cluster, i.e.
    positions ``H-1, 2H-1, ...`` — stay raw; other records backward-encode
    against their successor.
    """

    def __init__(self, hop_distance: int = DEFAULT_HOP_DISTANCE) -> None:
        if hop_distance < 2:
            raise ValueError(f"hop_distance must be >= 2, got {hop_distance}")
        self.hop_distance = hop_distance

    def plan_extend(self, records: list[str], new_position: int) -> list[ReencodeAction]:
        if new_position == 0:
            return []
        previous = new_position - 1
        if (previous + 1) % self.hop_distance == 0:
            return []  # previous record is a reference version; stays raw
        return [ReencodeAction(records[previous], records[new_position])]


class HopEncodingPolicy(EncodingPolicy):
    """Hop encoding with hop distance ``H`` (§3.2.2, Fig. 6).

    Every record backward-encodes against its immediate successor as soon
    as it arrives — so, like plain backward encoding, exactly one record
    (the tail) is raw and storage is ``Sb + (N-1)·Sd`` (Table 2). The
    *extra* deltas are the hops: when the chain reaches a position
    divisible by ``H^l``, the previous level-``l`` hop base (``position -
    H^l``) is *re*-encoded directly against the new record, shortening its
    decode path from ``H^l`` adjacent steps to one hop.

    At steady state this reproduces Fig. 6 exactly for H=4, N=17:
    R0→Δ(16,0), R4→Δ(8,4), R8→Δ(12,8), R3→Δ(4,3), tail R16 raw. The
    write-back count is ``N`` adjacent encodings plus ``~N/(H-1)`` hop
    re-encodings, matching Table 2's ``N + N·H/(H-1)^2`` approximation.
    """

    def __init__(self, hop_distance: int = DEFAULT_HOP_DISTANCE) -> None:
        if hop_distance < 2:
            raise ValueError(f"hop_distance must be >= 2, got {hop_distance}")
        self.hop_distance = hop_distance

    def plan_extend(self, records: list[str], new_position: int) -> list[ReencodeAction]:
        if new_position == 0:
            return []
        actions = [ReencodeAction(records[new_position - 1], records[new_position])]
        step = self.hop_distance
        while new_position % step == 0:
            target = new_position - step
            if target != new_position - 1:  # avoid re-planning the adjacent pair
                actions.append(
                    ReencodeAction(records[target], records[new_position])
                )
            step *= self.hop_distance
        return actions

    def hop_levels(self, chain_length: int) -> int:
        levels = 0
        span = self.hop_distance
        while span < chain_length:
            levels += 1
            span *= self.hop_distance
        return levels


def make_policy(name: str, hop_distance: int = DEFAULT_HOP_DISTANCE) -> EncodingPolicy:
    """Factory: ``'backward'``, ``'hop'``, or ``'version-jumping'``."""
    if name == "backward":
        return BackwardEncodingPolicy()
    if name == "hop":
        return HopEncodingPolicy(hop_distance)
    if name in ("version-jumping", "vjump"):
        return VersionJumpingPolicy(hop_distance)
    raise ValueError(f"unknown encoding policy {name!r}")
