"""Encoding-chain bookkeeping (§3.2.1).

Chains arise from similarity, not from declared versions: when a new record
selects a source, it joins (or forks) the source's chain. The registry
answers "what position is this record at, and is it the tail?" — the facts
encoding policies need — while the database itself owns the actual record
payloads and base pointers.

Overlapped encoding (Fig. 5) is the case where the selected source is *not*
its chain's tail; the new record then forks a fresh chain seeded by the
source, and the old chain keeps whatever structure it had. The paper
measures this to be rare (>95 % of updates build on the latest version).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ReencodeAction:
    """Order to (re)encode ``target_id``'s stored form against ``base_id``."""

    target_id: str
    base_id: str


@dataclass
class _Chain:
    chain_id: int
    records: list[str] = field(default_factory=list)

    @property
    def tail(self) -> str:
        return self.records[-1]

    def __len__(self) -> int:
        return len(self.records)


class ChainRegistry:
    """Tracks which chain each record belongs to and at which position."""

    def __init__(self) -> None:
        self._chains: dict[int, _Chain] = {}
        self._membership: dict[str, tuple[int, int]] = {}
        self._next_chain_id = 0

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._membership

    @property
    def chain_count(self) -> int:
        """Number of chains currently tracked."""
        return len(self._chains)

    def start_chain(self, record_id: str) -> int:
        """Open a new single-record chain; returns its chain id."""
        chain_id = self._next_chain_id
        self._next_chain_id += 1
        self._chains[chain_id] = _Chain(chain_id, [record_id])
        self._membership[record_id] = (chain_id, 0)
        return chain_id

    def position_of(self, record_id: str) -> tuple[int, int]:
        """Return ``(chain_id, position)`` of a known record.

        Raises:
            KeyError: if the record has never been chained.
        """
        return self._membership[record_id]

    def is_tail(self, record_id: str) -> bool:
        """True if ``record_id`` is the newest record of its chain."""
        entry = self._membership.get(record_id)
        if entry is None:
            return False
        chain_id, _ = entry
        return self._chains[chain_id].tail == record_id

    def tail_of_chain(self, chain_id: int) -> str:
        """Newest record id of a chain."""
        return self._chains[chain_id].tail

    def chain_length(self, chain_id: int) -> int:
        """Number of records currently in the chain."""
        return len(self._chains[chain_id])

    def records_of_chain(self, chain_id: int) -> list[str]:
        """Record ids in write order (oldest first)."""
        return list(self._chains[chain_id].records)

    def extend(self, source_id: str, new_id: str) -> tuple[int, int, bool]:
        """Attach ``new_id`` to ``source_id``'s chain.

        Returns:
            ``(chain_id, new_position, overlapped)``. If the source is its
            chain's tail the chain grows linearly; otherwise (overlapped
            encoding, Fig. 5) a fresh chain ``[source, new]`` forks off and
            ``overlapped`` is True. A source never seen before implicitly
            starts a chain first.
        """
        if source_id not in self._membership:
            self.start_chain(source_id)
        chain_id, _ = self._membership[source_id]
        chain = self._chains[chain_id]
        if chain.tail == source_id:
            chain.records.append(new_id)
            position = len(chain.records) - 1
            self._membership[new_id] = (chain_id, position)
            return chain_id, position, False
        # Overlapped: fork. The source conceptually restarts at position 0.
        fork_id = self._next_chain_id
        self._next_chain_id += 1
        self._chains[fork_id] = _Chain(fork_id, [source_id, new_id])
        self._membership[source_id] = (fork_id, 0)
        self._membership[new_id] = (fork_id, 1)
        return fork_id, 1, True

    def forget(self, record_id: str) -> None:
        """Drop a record from chain bookkeeping (used by garbage collection)."""
        entry = self._membership.pop(record_id, None)
        if entry is None:
            return
        chain_id, _ = entry
        chain = self._chains.get(chain_id)
        if chain and record_id in chain.records:
            chain.records.remove(record_id)
            for position, member in enumerate(chain.records):
                self._membership[member] = (chain_id, position)
            if not chain.records:
                del self._chains[chain_id]
