"""Failover experiment: time-to-promote and the lost-write window.

dbDedup's recovery story (§4.4) is that dedup state is *reconstructible*
— after a crash the index and caches rebuild from the record store and
oplog off the critical path. This experiment kills nodes mid-workload
under the seeded fault layer and measures what that costs end to end:

* **time-to-promote** — simulated seconds between the primary dying and
  a secondary taking over writes;
* **lost-write window** — inserts the dead primary acknowledged but
  never replicated; divergence rollback discards them when it rejoins
  (the price of asynchronous replication, not of deduplication);
* **resync bytes** — what the rejoining node pulls through the ordinary
  at-least-once shipping path to catch back up.

Scenarios share one workload trace (same seed), so differences are
attributable to the fault alone. ``tight`` ships the oplog per-entry
(``oplog_batch_bytes=1``), shrinking the lost-write window to zero —
the knob a deployment turns when it cares more about the window than
about batching efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import ClusterSpec, open_cluster
from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.sim.faults import CrashNode, FaultPlan
from repro.workloads import make_workload

#: Scenario name -> (crash rule factory, spec overrides).
SCENARIOS = ("none", "primary-kill", "primary-kill-tight", "secondary-kill")


@dataclass(frozen=True)
class FailoverRow:
    """One scenario's outcome."""

    scenario: str
    operations: int
    failovers: int
    time_to_promote_s: float | None
    stalled_ops: int
    lost_writes: int
    resync_bytes: int
    supervised_restarts: int
    converged: bool
    invariants_ok: bool


@dataclass
class FailoverResult:
    """Full scenario sweep over one workload trace."""

    workload: str
    seed: int
    rows: list[FailoverRow] = field(default_factory=list)
    #: Per-scenario failover event logs (CI uploads these as artifacts).
    event_logs: dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        """Aligned monospace table of the sweep."""
        return render_table(
            f"Failover — promotion latency and lost-write window "
            f"({self.workload}, seed={self.seed})",
            ["scenario", "ops", "failovers", "promote s", "stalled",
             "lost writes", "resync B", "restarts", "converged",
             "invariants"],
            [
                (
                    row.scenario,
                    row.operations,
                    row.failovers,
                    "-" if row.time_to_promote_s is None
                    else row.time_to_promote_s,
                    row.stalled_ops,
                    row.lost_writes,
                    row.resync_bytes,
                    row.supervised_restarts,
                    "yes" if row.converged else "NO",
                    "ok" if row.invariants_ok else "FAILED",
                )
                for row in self.rows
            ],
        )


def _scenario_rule(scenario: str, crash_seq: int) -> CrashNode | None:
    """The crash rule one scenario installs (None for the baseline)."""
    if scenario == "none":
        return None
    if scenario == "secondary-kill":
        return CrashNode(
            node="secondary:0", after_appends=crash_seq, restart=False
        )
    return CrashNode(node="primary", after_appends=crash_seq, restart=False)


def failover_experiment(
    workload_name: str = "wikipedia",
    target_bytes: int = 300_000,
    seed: int = 7,
    crash_fraction: float = 0.5,
    num_secondaries: int = 2,
    scenarios: tuple[str, ...] = SCENARIOS,
    chunk_size: int = 64,
) -> FailoverResult:
    """Kill nodes mid-workload; measure promotion latency and data loss.

    Every scenario replays the same insert trace into a fresh cluster
    with a :class:`CrashNode` rule armed at ``crash_fraction`` of the
    trace. ``primary-kill`` runs the default shipping threshold (a real
    lost-write window), ``primary-kill-tight`` ships per-entry so the
    window collapses to zero, and ``secondary-kill`` exercises the
    supervised-restart path instead of promotion.
    """
    result = FailoverResult(workload=workload_name, seed=seed)
    for scenario in scenarios:
        workload = make_workload(
            workload_name, seed=seed, target_bytes=target_bytes
        )
        trace = list(workload.insert_trace())
        inserts = sum(1 for op in trace if op.kind == "insert")
        crash_seq = max(1, int(inserts * crash_fraction))
        spec = ClusterSpec(
            dedup=DedupConfig(chunk_size=chunk_size),
            num_secondaries=num_secondaries,
            # Per-entry shipping where the scenario needs it: "tight"
            # shrinks the lost-write window to zero, and the secondary
            # kill triggers off the *replica's* oplog, which only moves
            # when batches apply.
            oplog_batch_bytes=(
                1 if scenario in ("primary-kill-tight", "secondary-kill")
                else ClusterSpec().oplog_batch_bytes
            ),
        )
        client = open_cluster(spec)
        cluster = client.cluster
        rule = _scenario_rule(scenario, crash_seq)
        if rule is not None:
            FaultPlan(seed=seed, rules=[rule]).install(cluster)
        run = client.run(trace)
        failover = cluster.failover
        report = client.check_invariants(strict=False)
        result.event_logs[scenario] = failover.event_log()
        result.rows.append(
            FailoverRow(
                scenario=scenario,
                operations=run.operations,
                failovers=failover.failovers,
                time_to_promote_s=failover.last_time_to_promote_s,
                stalled_ops=failover.stalled_ops,
                lost_writes=failover.rollback_entries,
                resync_bytes=failover.resync_bytes,
                supervised_restarts=failover.supervised_restarts,
                converged=cluster.replicas_converged(),
                invariants_ok=report.ok,
            )
        )
    return result
