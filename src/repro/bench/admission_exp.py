"""Admission experiment: inline CPU saved vs dedup ratio retained.

The admission controller decides, per stream, whether a record dedups
inline, defers to the idle-time out-of-line queue, or bypasses dedup
permanently. This experiment quantifies the trade on a mixed workload —
a high-yield stream (wikipedia) interleaved with a low-yield one (oltp)
— by replaying the identical trace under each ``admission_mode``:

* **inline** — every record through the full pipeline at insert time;
  the dedup-ratio ceiling and the inline-CPU floor.
* **hybrid** — the yield estimator keeps the high-yield stream inline
  and shunts the low-yield stream to the deferred queue, which drains
  during idle slices (§3.3.2's idleness signal) and at finalize.
* **governor** — the paper's §3.4.1 one-way kill switch, as the
  degenerate baseline.

The headline comparison: hybrid should spend less inline CPU than
all-inline while retaining nearly all of its final dedup ratio (the
deferred records still dedup, just off the insert path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import ClusterSpec, open_cluster
from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.workloads import make_workload
from repro.workloads.base import Operation

#: Modes swept, in reporting order (inline first: it is the baseline
#: the retained-ratio column is normalized against).
MODES = ("inline", "hybrid", "governor")


@dataclass(frozen=True)
class AdmissionRow:
    """One admission mode's outcome on the shared trace."""

    mode: str
    operations: int
    inline_cpu_s: float
    outofline_cpu_s: float
    storage_ratio: float
    ratio_retained_pct: float
    inline_decisions: int
    defer_decisions: int
    bypass_decisions: int
    bypassed_streams: int
    invariants_ok: bool


@dataclass
class AdmissionResult:
    """Full mode sweep over one mixed trace."""

    mix: str
    seed: int
    rows: list[AdmissionRow] = field(default_factory=list)

    def render(self) -> str:
        """Aligned monospace table of the sweep."""
        return render_table(
            f"Admission — inline CPU saved vs dedup ratio retained "
            f"(mix={self.mix}, seed={self.seed})",
            ["mode", "ops", "inline cpu s", "deferred cpu s", "storage",
             "retained %", "inline", "defer", "bypass", "streams off",
             "invariants"],
            [
                (
                    row.mode,
                    row.operations,
                    f"{row.inline_cpu_s:.4f}",
                    f"{row.outofline_cpu_s:.4f}",
                    f"{row.storage_ratio:.2f}x",
                    f"{row.ratio_retained_pct:.1f}",
                    row.inline_decisions,
                    row.defer_decisions,
                    row.bypass_decisions,
                    row.bypassed_streams,
                    "ok" if row.invariants_ok else "FAILED",
                )
                for row in self.rows
            ],
        )


def mixed_trace(
    mix: str,
    seed: int,
    target_bytes: int,
    idle_every: int = 64,
    idle_seconds: float = 0.5,
) -> list[Operation]:
    """Round-robin interleaving of the mix's insert traces + idle slices.

    Each workload keeps its own logical database (the admission stream
    key), so the estimator sees the streams independently exactly as a
    multi-tenant deployment would. An idle operation every
    ``idle_every`` inserts gives the deferred queue its §3.3.2 drain
    windows mid-run rather than leaving all out-of-line work to
    finalize.
    """
    names = [name.strip() for name in mix.split(",") if name.strip()]
    if not names:
        raise ValueError(f"empty workload mix: {mix!r}")
    share = max(10_000, target_bytes // len(names))
    streams = [
        iter(make_workload(name, seed=seed, target_bytes=share).insert_trace())
        for name in names
    ]
    trace: list[Operation] = []
    inserts = 0
    while streams:
        exhausted = []
        for stream in streams:
            op = next(stream, None)
            if op is None:
                exhausted.append(stream)
                continue
            trace.append(op)
            inserts += 1
            if inserts % idle_every == 0:
                trace.append(Operation("idle", idle_seconds=idle_seconds))
        for stream in exhausted:
            streams.remove(stream)
    return trace


def admission_experiment(
    mix: str = "wikipedia,oltp",
    target_bytes: int = 300_000,
    seed: int = 7,
    chunk_size: int = 64,
    window: int = 128,
    modes: tuple[str, ...] = MODES,
) -> AdmissionResult:
    """Replay one mixed trace under each admission mode; measure the trade.

    The evaluation window is deliberately small (``window=128``) so the
    estimator completes several windows per stream on simulation-sized
    corpora; the paper's 100 000-insert window assumes production
    volumes.
    """
    result = AdmissionResult(mix=mix, seed=seed)
    trace = mixed_trace(mix, seed, target_bytes)
    inline_ratio: float | None = None
    for mode in modes:
        spec = ClusterSpec(
            dedup=DedupConfig(
                chunk_size=chunk_size,
                governor_window=window,
            ),
            admission_mode=mode,
        )
        client = open_cluster(spec)
        run = client.run(trace)
        report = client.check_invariants(strict=False)
        shard = client.admission_report()["shards"][0]
        decisions: dict[str, int] = {}
        for stream_counts in shard["decisions"].values():
            for decision, count in stream_counts.items():
                decisions[decision] = decisions.get(decision, 0) + count
        ratio = run.storage_compression_ratio
        if mode == "inline":
            inline_ratio = ratio
        retained = 100.0 * ratio / inline_ratio if inline_ratio else 100.0
        result.rows.append(
            AdmissionRow(
                mode=mode,
                operations=run.operations,
                inline_cpu_s=shard["inline_cpu_seconds"],
                outofline_cpu_s=shard["outofline_cpu_seconds"],
                storage_ratio=ratio,
                ratio_retained_pct=retained,
                inline_decisions=decisions.get("inline", 0),
                defer_decisions=decisions.get("defer", 0),
                bypass_decisions=decisions.get("bypass", 0),
                bypassed_streams=len(shard["bypassed_streams"]),
                invariants_ok=report.ok,
            )
        )
    return result
