"""Scale sensitivity: how compression ratios grow with corpus size.

The paper's absolute ratios come from GB-scale corpora with long revision
chains; the bench suite runs at MB scale. This experiment quantifies the
gap's direction: as the corpus grows, chains lengthen, per-chain raw
records amortize, and dbDedup's ratio climbs toward the paper's numbers —
while trad-dedup's index memory grows linearly, which is exactly the
paper's scaling argument against it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.trad_dedup import TradDedupEngine
from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads import make_workload


@dataclass(frozen=True)
class ScaleRow:
    target_bytes: int
    dbdedup_ratio: float
    dbdedup_index_bytes: int
    trad_ratio: float
    trad_index_bytes: int


@dataclass
class ScaleResult:
    workload: str
    rows: list[ScaleRow]

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            f"Scale sensitivity ({self.workload}, 64 B chunks)",
            ["corpus MB", "dbDedup ratio", "dbDedup idx KB",
             "trad ratio", "trad idx KB"],
            [
                (
                    row.target_bytes / 1e6,
                    row.dbdedup_ratio,
                    row.dbdedup_index_bytes / 1024.0,
                    row.trad_ratio,
                    row.trad_index_bytes / 1024.0,
                )
                for row in self.rows
            ],
        )


def scale_sweep(
    workload_name: str = "wikipedia",
    targets: tuple[int, ...] = (400_000, 1_000_000, 2_500_000),
    seed: int = 7,
) -> ScaleResult:
    """Run dbDedup and trad-dedup at increasing corpus sizes."""
    rows = []
    for target in targets:
        cluster = Cluster(config=ClusterConfig(dedup=DedupConfig(chunk_size=64)))
        workload = make_workload(workload_name, seed=seed, target_bytes=target)
        result = cluster.run(workload.insert_trace())

        trad = TradDedupEngine(chunk_size=64)
        workload = make_workload(workload_name, seed=seed, target_bytes=target)
        trad.ingest_all(op.content for op in workload.insert_trace())

        rows.append(
            ScaleRow(
                target_bytes=target,
                dbdedup_ratio=result.storage_compression_ratio,
                dbdedup_index_bytes=result.index_memory_bytes,
                trad_ratio=trad.stats.compression_ratio,
                trad_index_bytes=trad.index_memory_bytes,
            )
        )
    return ScaleResult(workload=workload_name, rows=rows)
