"""Scale sensitivity: how compression ratios grow with corpus size.

The paper's absolute ratios come from GB-scale corpora with long revision
chains; the bench suite runs at MB scale. This experiment quantifies the
gap's direction: as the corpus grows, chains lengthen, per-chain raw
records amortize, and dbDedup's ratio climbs toward the paper's numbers —
while trad-dedup's index memory grows linearly, which is exactly the
paper's scaling argument against it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.trad_dedup import TradDedupEngine
from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.index import IndexSpec, TieredFeatureIndex
from repro.index.cuckoo import ENTRY_BYTES
from repro.index.tiered import HOT_ENTRY_BYTES
from repro.workloads import make_workload


@dataclass(frozen=True)
class ScaleRow:
    target_bytes: int
    dbdedup_ratio: float
    dbdedup_index_bytes: int
    trad_ratio: float
    trad_index_bytes: int


@dataclass
class ScaleResult:
    workload: str
    rows: list[ScaleRow]

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            f"Scale sensitivity ({self.workload}, 64 B chunks)",
            ["corpus MB", "dbDedup ratio", "dbDedup idx KB",
             "trad ratio", "trad idx KB"],
            [
                (
                    row.target_bytes / 1e6,
                    row.dbdedup_ratio,
                    row.dbdedup_index_bytes / 1024.0,
                    row.trad_ratio,
                    row.trad_index_bytes / 1024.0,
                )
                for row in self.rows
            ],
        )


def scale_sweep(
    workload_name: str = "wikipedia",
    targets: tuple[int, ...] = (400_000, 1_000_000, 2_500_000),
    seed: int = 7,
) -> ScaleResult:
    """Run dbDedup and trad-dedup at increasing corpus sizes."""
    rows = []
    for target in targets:
        cluster = Cluster(config=ClusterConfig(dedup=DedupConfig(chunk_size=64)))
        workload = make_workload(workload_name, seed=seed, target_bytes=target)
        result = cluster.run(workload.insert_trace())

        trad = TradDedupEngine(chunk_size=64)
        workload = make_workload(workload_name, seed=seed, target_bytes=target)
        trad.ingest_all(op.content for op in workload.insert_trace())

        rows.append(
            ScaleRow(
                target_bytes=target,
                dbdedup_ratio=result.storage_compression_ratio,
                dbdedup_index_bytes=result.index_memory_bytes,
                trad_ratio=trad.stats.compression_ratio,
                trad_index_bytes=trad.index_memory_bytes,
            )
        )
    return ScaleResult(workload=workload_name, rows=rows)


# -- dedup ratio vs index memory (tiered budget curve) ----------------------


@dataclass(frozen=True)
class IndexMemoryRow:
    label: str
    hot_bytes_budget: int | None
    dedup_ratio: float
    hot_bytes: int
    cold_bytes: int
    demotions: int
    cold_hits: int


@dataclass
class IndexMemoryResult:
    workload: str
    target_bytes: int
    rows: list[IndexMemoryRow]

    @property
    def baseline(self) -> IndexMemoryRow:
        """The unbounded-cuckoo row the tiered rows are measured against."""
        return self.rows[0]

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            f"Dedup ratio vs index memory ({self.workload}, "
            f"{self.target_bytes / 1e6:.1f} MB corpus, 64 B chunks)",
            ["index", "budget KB", "ratio", "hot KB", "cold KB",
             "demotions", "cold hits"],
            [
                (
                    row.label,
                    (row.hot_bytes_budget or 0) / 1024.0,
                    row.dedup_ratio,
                    row.hot_bytes / 1024.0,
                    row.cold_bytes / 1024.0,
                    row.demotions,
                    row.cold_hits,
                )
                for row in self.rows
            ],
        )


def _index_totals(cluster: Cluster) -> tuple[int, int, int, int]:
    """Sum (hot_bytes, cold_bytes, demotions, cold_hits) over partitions."""
    hot = cold = demotions = cold_hits = 0
    for _, part in cluster.primary.engine.index_partitions():
        hot += getattr(part, "hot_bytes", part.memory_bytes)
        cold += getattr(part, "cold_bytes", 0)
        demotions += getattr(part, "demotions", 0)
        cold_hits += getattr(part, "cold_hits", 0)
    return hot, cold, demotions, cold_hits


def index_memory_sweep(
    workload_name: str = "wikipedia",
    target_bytes: int = 1_500_000,
    budget_fractions: tuple[float, ...] = (0.5, 0.25, 0.125),
    seed: int = 7,
) -> IndexMemoryResult:
    """Dedup-ratio-vs-index-memory curve: unbounded cuckoo vs tiered.

    The unbounded cuckoo run fixes the ratio ceiling and the full hot
    footprint; each tiered run then squeezes ``hot_bytes_budget`` to a
    fraction of that footprint (in tiered per-entry accounting, which
    also charges the stored feature). The paper's scaling argument holds
    when the ratio stays near the ceiling while the resident hot tier
    shrinks with the budget.
    """
    rows: list[IndexMemoryRow] = []

    def drive(index_spec: IndexSpec | None, label: str,
              budget: int | None) -> None:
        cluster = Cluster(config=ClusterConfig(
            dedup=DedupConfig(chunk_size=64, index=index_spec)
        ))
        workload = make_workload(
            workload_name, seed=seed, target_bytes=target_bytes
        )
        result = cluster.run(workload.insert_trace())
        hot, cold, demotions, cold_hits = _index_totals(cluster)
        rows.append(IndexMemoryRow(
            label=label,
            hot_bytes_budget=budget,
            dedup_ratio=result.storage_compression_ratio,
            hot_bytes=hot,
            cold_bytes=cold,
            demotions=demotions,
            cold_hits=cold_hits,
        ))

    drive(None, "cuckoo", None)
    # The same entry population costs HOT_ENTRY_BYTES each under tiered
    # accounting — budgets are fractions of that honest footprint.
    full = (rows[0].hot_bytes // ENTRY_BYTES) * HOT_ENTRY_BYTES
    for fraction in budget_fractions:
        budget = max(HOT_ENTRY_BYTES, int(full * fraction))
        drive(
            IndexSpec(kind="tiered", hot_bytes_budget=budget),
            f"tiered@{fraction:g}",
            budget,
        )
    return IndexMemoryResult(
        workload=workload_name, target_bytes=target_bytes, rows=rows
    )


# -- synthetic budget probe (direct index drive) ----------------------------


@dataclass(frozen=True)
class BudgetProbeResult:
    features: int
    hot_bytes_budget: int
    peak_hot_bytes: int
    cold_bytes: int
    demotions: int
    elapsed_s: float

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            f"Tiered budget probe ({self.features:,} synthetic features)",
            ["budget KB", "peak hot KB", "cold KB", "demotions",
             "Mfeat/s"],
            [(
                self.hot_bytes_budget / 1024.0,
                self.peak_hot_bytes / 1024.0,
                self.cold_bytes / 1024.0,
                self.demotions,
                self.features / max(self.elapsed_s, 1e-9) / 1e6,
            )],
        )


def budget_probe(
    features: int = 1_000_000,
    hot_bytes_budget: int = 1 << 20,
    batch_size: int = 1 << 16,
    seed: int = 7,
) -> BudgetProbeResult:
    """Drive a tiered index directly with synthetic unique features.

    This is the 10⁷-feature acceptance probe: the hot tier must hold its
    byte budget at every batch boundary (``insert_batch`` enforces the
    budget once per batch) no matter how many features stream through.
    The cold shadow sets are disabled — they exist only to diagnose
    false positives and would dominate memory at this scale.
    """
    import numpy as np

    spec = IndexSpec(
        kind="tiered",
        hot_bytes_budget=hot_bytes_budget,
        num_buckets=1 << 15,
        cold_bands=256,
        cold_band_records=64,
        cold_band_features=1 << 14,
    )
    index = TieredFeatureIndex(spec, track_false_positives=False)
    rng = np.random.default_rng(seed)
    peak = 0
    done = 0
    start = time.perf_counter()
    while done < features:
        count = min(batch_size, features - done)
        batch = rng.integers(0, 1 << 63, size=count, dtype=np.uint64)
        # Rotating integer record refs: band FIFOs cap retention anyway.
        records = [(done + offset) >> 10 for offset in range(count)]
        index.insert_batch(batch, records)
        if index.hot_bytes > peak:
            peak = index.hot_bytes
        done += count
    elapsed = time.perf_counter() - start
    return BudgetProbeResult(
        features=features,
        hot_bytes_budget=hot_bytes_budget,
        peak_hot_bytes=peak,
        cold_bytes=index.cold_bytes,
        demotions=index.demotions,
        elapsed_s=elapsed,
    )
