"""One-shot report: run every experiment and write a markdown document.

``python -m repro report --out results.md`` regenerates all tables and
figures at a configurable scale and collects the rendered output — the
quickest way to produce a fresh EXPERIMENTS-style artifact on new
hardware or after a change.
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from repro.bench import experiments
from repro.bench import ablations
from repro.bench.scale import scale_sweep


def _sections(target_bytes: int) -> list[tuple[str, Callable[[], object]]]:
    perf_bytes = min(target_bytes, 400_000)
    return [
        ("Fig. 1 — headline (Wikipedia)",
         lambda: experiments.fig01(target_bytes=target_bytes)),
        ("Table 2 — encoding cost model", experiments.table2),
        ("Fig. 7 — size/savings CDF (Wikipedia)",
         lambda: experiments.fig07("wikipedia", target_bytes=target_bytes)),
        ("Fig. 10 — Enron",
         lambda: experiments.fig10("enron", target_bytes=target_bytes)),
        ("Fig. 10 — Stack Exchange",
         lambda: experiments.fig10("stackexchange", target_bytes=target_bytes)),
        ("Fig. 10 — Message Boards",
         lambda: experiments.fig10("messageboards", target_bytes=target_bytes)),
        ("Fig. 11 — storage vs network",
         lambda: experiments.fig11(target_bytes=target_bytes)),
        ("Fig. 12 — throughput & latency",
         lambda: experiments.fig12(target_bytes=perf_bytes)),
        ("Fig. 13a — source cache rewards",
         lambda: experiments.fig13a(target_bytes=target_bytes)),
        ("Fig. 13b — write-back cache bursts",
         lambda: experiments.fig13b(target_bytes=min(target_bytes, 600_000))),
        ("Fig. 14 — hop encoding vs version jumping",
         lambda: experiments.fig14(revisions=max(60, min(160, target_bytes // 6000)))),
        ("Fig. 15 — anchor interval sweep", experiments.fig15),
        ("Ablation — sketch geometry",
         lambda: ablations.sketch_sweep(target_bytes=target_bytes)),
        ("Ablation — replication stack",
         lambda: ablations.network_stack_ablation(target_bytes=target_bytes)),
        ("Ablation — background compaction",
         lambda: ablations.compaction_ablation(target_bytes=target_bytes)),
        ("Scale sensitivity",
         lambda: scale_sweep(targets=(target_bytes // 3, target_bytes))),
    ]


def generate_report(target_bytes: int = 800_000) -> str:
    """Run every experiment; return the assembled markdown text."""
    parts = [
        "# dbDedup — regenerated results",
        "",
        f"Corpus scale: ~{target_bytes / 1e6:.1f} MB per dataset. "
        "See EXPERIMENTS.md for paper-vs-measured commentary.",
        "",
    ]
    for title, runner in _sections(target_bytes):
        result = runner()
        parts.append(f"## {title}")
        parts.append("")
        parts.append("```")
        parts.append(result.render())
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def write_report(path: str | Path, target_bytes: int = 800_000) -> int:
    """Write the full report to ``path``; returns its size in bytes."""
    blob = generate_report(target_bytes).encode()
    Path(path).write_bytes(blob)
    return len(blob)
