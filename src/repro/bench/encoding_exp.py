"""Encoding-scheme experiments: Fig. 14 and Table 2.

A single long version chain (one article, hundreds of revisions) is driven
through the full cluster under each encoding scheme; the three panels of
Fig. 14 — compression ratio normalized to standard backward encoding,
worst-case source retrievals, and write-back count — are read directly off
the database state afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.encoding.analysis import (
    EncodingCosts,
    backward_costs,
    hop_costs,
    version_jumping_costs,
)
from repro.workloads.wikipedia import WikipediaWorkload


@dataclass(frozen=True)
class EncodingRunRow:
    """One (scheme, hop distance) point of Fig. 14."""

    scheme: str
    hop_distance: int
    compression_ratio: float
    normalized_ratio: float  # vs standard backward encoding
    worst_case_retrievals: int
    writebacks: int


@dataclass
class HopEncodingResult:
    backward_ratio: float
    backward_retrievals: int
    backward_writebacks: int
    rows: list[EncodingRunRow]

    def rows_for(self, scheme: str) -> list[EncodingRunRow]:
        """All rows of one scheme, in sweep order."""
        return [row for row in self.rows if row.scheme == scheme]

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        header = (
            f"(backward encoding: ratio {self.backward_ratio:.2f}x, "
            f"worst-case retrievals {self.backward_retrievals}, "
            f"writebacks {self.backward_writebacks})"
        )
        table = render_table(
            "Fig. 14: hop encoding vs version jumping " + header,
            ["scheme", "H", "ratio", "vs backward", "worst retrievals", "writebacks"],
            [
                (
                    row.scheme,
                    row.hop_distance,
                    row.compression_ratio,
                    row.normalized_ratio,
                    row.worst_case_retrievals,
                    row.writebacks,
                )
                for row in self.rows
            ],
        )
        return table


def _run_chain(
    encoding: str, hop_distance: int, revisions: int, seed: int
) -> tuple[float, int, int]:
    """Drive one long chain; returns (ratio, worst retrievals, writebacks)."""
    dedup = DedupConfig(
        chunk_size=64,
        encoding=encoding,
        hop_distance=hop_distance,
        size_filter_enabled=False,
    )
    cluster = Cluster(config=ClusterConfig(dedup=dedup))
    workload = WikipediaWorkload(
        seed=seed,
        target_bytes=10_000_000_000,  # bounded by num_articles/revision cap below
        num_articles=1,
        median_article_bytes=3000,
    )
    trace = workload.insert_trace()
    count = 0
    for op in trace:
        cluster.execute(op)
        count += 1
        if count >= revisions:
            break
    cluster.finalize()
    db = cluster.primary.db
    ratio = db.logical_raw_bytes / db.stored_bytes if db.stored_bytes else 1.0
    worst = max(
        db.decode_cost(record_id)
        for record_id, record in db.records.items()
        if not record.deleted
    )
    return ratio, worst, db.writebacks_applied


def fig14(
    hop_distances: tuple[int, ...] = (4, 8, 12, 16, 20, 24, 28, 32),
    revisions: int = 200,
    seed: int = 7,
) -> HopEncodingResult:
    """Fig. 14: sweep hop distance for hop encoding and version jumping."""
    backward_ratio, backward_worst, backward_wb = _run_chain(
        "backward", 16, revisions, seed
    )
    rows = []
    for scheme, encoding in (("hop", "hop"), ("version-jumping", "version-jumping")):
        for h in hop_distances:
            ratio, worst, writebacks = _run_chain(encoding, h, revisions, seed)
            rows.append(
                EncodingRunRow(
                    scheme=scheme,
                    hop_distance=h,
                    compression_ratio=ratio,
                    normalized_ratio=ratio / backward_ratio,
                    worst_case_retrievals=worst,
                    writebacks=writebacks,
                )
            )
    return HopEncodingResult(
        backward_ratio=backward_ratio,
        backward_retrievals=backward_worst,
        backward_writebacks=backward_wb,
        rows=rows,
    )


@dataclass
class Table2Result:
    """Analytic (Table 2) vs formula inputs for a chain configuration."""

    chain_length: int
    hop_distance: int
    base_size: float
    delta_size: float
    backward: EncodingCosts
    version_jumping: EncodingCosts
    hop: EncodingCosts

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            f"Table 2: encoding scheme cost model "
            f"(N={self.chain_length}, H={self.hop_distance}, "
            f"Sb={self.base_size:.0f}, Sd={self.delta_size:.0f})",
            ["scheme", "storage bytes", "worst retrievals", "writebacks"],
            [
                (costs.scheme, costs.storage_bytes, costs.worst_case_retrievals,
                 costs.writebacks)
                for costs in (self.backward, self.version_jumping, self.hop)
            ],
        )


def table2(
    chain_length: int = 200,
    hop_distance: int = 16,
    base_size: float = 6000.0,
    delta_size: float = 300.0,
) -> Table2Result:
    """Table 2: the closed-form trade-off summary."""
    return Table2Result(
        chain_length=chain_length,
        hop_distance=hop_distance,
        base_size=base_size,
        delta_size=delta_size,
        backward=backward_costs(chain_length, base_size, delta_size),
        version_jumping=version_jumping_costs(
            chain_length, hop_distance, base_size, delta_size
        ),
        hop=hop_costs(chain_length, hop_distance, base_size, delta_size),
    )
