"""Ablations of dbDedup's design choices beyond the paper's figures.

DESIGN.md calls out the mechanisms that make the paper's scheme practical;
each sweep here removes or re-parameterizes one of them so its individual
contribution is visible:

* sketch geometry (chunk size × K) — similarity detection vs index memory;
* encoding scheme × dataset — what hop encoding buys outside Fig. 14's
  single-chain setting;
* write-back cache capacity — how lossiness trades memory for ratio;
* minimum-savings threshold — when a delta is worth a chain edge;
* oplog-batch compression — how today's block-compressed replication
  streams compose with forward encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads import make_workload


@dataclass(frozen=True)
class SketchSweepRow:
    chunk_size: int
    top_k: int
    compression_ratio: float
    dedup_hit_ratio: float
    index_memory_bytes: int
    #: Mean CDC chunks per sketched record (``dedup_chunks_per_record``
    #: histogram) — halving the chunk size should roughly double this.
    mean_chunks_per_record: float = 0.0
    #: Median of the same histogram (upper bound of the p50 bucket).
    p50_chunks_per_record: float = 0.0
    #: Drop reason → records dropped for it, engine-wide — shows *why*
    #: the non-deduped remainder left the pipeline at this geometry.
    drop_reasons: dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.drop_reasons is None:
            object.__setattr__(self, "drop_reasons", {})


def _format_drops(drop_reasons: dict[str, int]) -> str:
    if not drop_reasons:
        return "-"
    return ", ".join(
        f"{reason}={count}"
        for reason, count in sorted(drop_reasons.items())
    )


@dataclass
class SketchSweepResult:
    workload: str
    rows: list[SketchSweepRow]

    def row(self, chunk_size: int, top_k: int) -> SketchSweepRow:
        """Look up one result row by its key; raises KeyError if absent."""
        for row in self.rows:
            if row.chunk_size == chunk_size and row.top_k == top_k:
                return row
        raise KeyError((chunk_size, top_k))

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            f"Ablation ({self.workload}): sketch geometry (chunk size x K)",
            ["chunk", "K", "ratio", "dedup hits", "index KB",
             "chunks/rec (mean/p50)", "drops by reason"],
            [
                (row.chunk_size, row.top_k, row.compression_ratio,
                 row.dedup_hit_ratio, row.index_memory_bytes / 1024.0,
                 f"{row.mean_chunks_per_record:.1f}/"
                 f"{row.p50_chunks_per_record:.0f}",
                 _format_drops(row.drop_reasons))
                for row in self.rows
            ],
        )


def sketch_sweep(
    workload_name: str = "wikipedia",
    chunk_sizes: tuple[int, ...] = (1024, 256, 64),
    top_ks: tuple[int, ...] = (2, 8),
    target_bytes: int = 800_000,
    seed: int = 7,
) -> SketchSweepResult:
    """Chunk-size × K sweep: finer features find more similar records."""
    rows = []
    for chunk_size in chunk_sizes:
        for top_k in top_ks:
            dedup = DedupConfig(chunk_size=chunk_size, top_k=top_k)
            cluster = Cluster(config=ClusterConfig(dedup=dedup))
            workload = make_workload(
                workload_name, seed=seed, target_bytes=target_bytes
            )
            result = cluster.run(workload.insert_trace())
            stats = cluster.primary.engine.stats
            chunks = stats.chunks_per_record
            rows.append(
                SketchSweepRow(
                    chunk_size=chunk_size,
                    top_k=top_k,
                    compression_ratio=result.storage_compression_ratio,
                    dedup_hit_ratio=stats.dedup_hit_ratio,
                    index_memory_bytes=result.index_memory_bytes,
                    mean_chunks_per_record=(
                        chunks.sum / chunks.count if chunks.count else 0.0
                    ),
                    p50_chunks_per_record=chunks.quantile(0.5),
                    drop_reasons=stats.drop_reasons,
                )
            )
    return SketchSweepResult(workload=workload_name, rows=rows)


@dataclass(frozen=True)
class EncodingSweepRow:
    workload: str
    encoding: str
    storage_ratio: float
    network_ratio: float
    worst_decode: int


@dataclass
class EncodingSweepResult:
    rows: list[EncodingSweepRow]

    def row(self, workload: str, encoding: str) -> EncodingSweepRow:
        """Look up one result row by its key; raises KeyError if absent."""
        for row in self.rows:
            if row.workload == workload and row.encoding == encoding:
                return row
        raise KeyError((workload, encoding))

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            "Ablation: encoding scheme x dataset",
            ["workload", "encoding", "storage", "network", "worst decode"],
            [
                (row.workload, row.encoding, row.storage_ratio,
                 row.network_ratio, row.worst_decode)
                for row in self.rows
            ],
        )


def encoding_sweep(
    workloads: tuple[str, ...] = ("wikipedia", "enron"),
    encodings: tuple[str, ...] = ("forward", "backward", "version-jumping", "hop"),
    target_bytes: int = 600_000,
    seed: int = 7,
) -> EncodingSweepResult:
    """Each storage encoding on each dataset: ratio and decode bounds."""
    rows = []
    for workload_name in workloads:
        for encoding in encodings:
            dedup = DedupConfig(chunk_size=64, encoding=encoding)
            cluster = Cluster(config=ClusterConfig(dedup=dedup))
            workload = make_workload(
                workload_name, seed=seed, target_bytes=target_bytes
            )
            result = cluster.run(workload.insert_trace())
            db = cluster.primary.db
            worst = max(db.decode_cost(record_id) for record_id in db.records)
            rows.append(
                EncodingSweepRow(
                    workload=workload_name,
                    encoding=encoding,
                    storage_ratio=result.storage_compression_ratio,
                    network_ratio=result.network_compression_ratio,
                    worst_decode=worst,
                )
            )
    return EncodingSweepResult(rows=rows)


@dataclass(frozen=True)
class WritebackSweepRow:
    capacity_bytes: int
    storage_ratio: float
    discarded: int
    discarded_savings: int


@dataclass
class WritebackSweepResult:
    rows: list[WritebackSweepRow]

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            "Ablation: lossy write-back cache capacity (Wikipedia)",
            ["capacity KB", "storage ratio", "discards", "lost savings KB"],
            [
                (row.capacity_bytes / 1024.0, row.storage_ratio, row.discarded,
                 row.discarded_savings / 1024.0)
                for row in self.rows
            ],
        )


def writeback_capacity_sweep(
    capacities: tuple[int, ...] = (2 * 1024, 16 * 1024, 8 * 1024 * 1024),
    target_bytes: int = 700_000,
    seed: int = 7,
) -> WritebackSweepResult:
    """Shrinking the write-back cache loses exactly the discarded savings."""
    rows = []
    for capacity in capacities:
        dedup = DedupConfig(chunk_size=64, writeback_cache_bytes=capacity)
        cluster = Cluster(config=ClusterConfig(dedup=dedup))
        workload = make_workload("wikipedia", seed=seed, target_bytes=target_bytes)
        result = cluster.run(workload.insert_trace())
        cache = cluster.primary.db.writeback_cache
        rows.append(
            WritebackSweepRow(
                capacity_bytes=capacity,
                storage_ratio=result.storage_compression_ratio,
                discarded=cache.discarded,
                discarded_savings=cache.discarded_savings,
            )
        )
    return WritebackSweepResult(rows=rows)


@dataclass(frozen=True)
class NetworkStackRow:
    label: str
    network_ratio: float


@dataclass
class NetworkStackResult:
    rows: list[NetworkStackRow]

    def row(self, label: str) -> NetworkStackRow:
        """Look up one result row by its key; raises KeyError if absent."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            "Ablation: replication-stream reduction stack (Wikipedia)",
            ["configuration", "network ratio"],
            [(row.label, row.network_ratio) for row in self.rows],
        )


@dataclass
class CompactionAblationResult:
    """Effect of background compaction on a fork-heavy corpus."""

    ratio_before: float
    ratio_after: float
    raw_before: int
    raw_after: int
    compacted: int

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return (
            "Ablation: background compaction on a fork-heavy wiki corpus\n"
            f"  storage ratio: {self.ratio_before:.2f}x -> "
            f"{self.ratio_after:.2f}x\n"
            f"  raw records:   {self.raw_before} -> {self.raw_after} "
            f"({self.compacted} re-encoded)"
        )


def compaction_ablation(
    target_bytes: int = 600_000,
    seed: int = 7,
    incremental_fraction: float = 0.9,
) -> CompactionAblationResult:
    """Overlapped-encoding orphans reclaimed by the background compactor.

    Uses a revert-heavy wiki corpus (10 % of revisions derive from old
    versions) where Fig. 5 forks orphan many raw records; one compaction
    pass re-encodes them and recovers the Fig. 11 storage/network gap.
    """
    from repro.db.record import RecordForm
    from repro.workloads.wikipedia import WikipediaWorkload

    cluster = Cluster(
        config=ClusterConfig(dedup=DedupConfig(chunk_size=64))
    )
    workload = WikipediaWorkload(
        seed=seed, target_bytes=target_bytes,
        incremental_fraction=incremental_fraction,
    )
    result = cluster.run(workload.insert_trace())
    db = cluster.primary.db

    def raw_count() -> int:
        return sum(
            1 for record in db.records.values()
            if record.form is RecordForm.RAW
        )

    before_ratio = result.storage_compression_ratio
    before_raw = raw_count()
    report = cluster.primary.compact_storage()
    db.drain_writebacks()
    after_ratio = db.logical_raw_bytes / db.stored_bytes if db.stored_bytes else 1.0
    return CompactionAblationResult(
        ratio_before=before_ratio,
        ratio_after=after_ratio,
        raw_before=before_raw,
        raw_after=raw_count(),
        compacted=report.compacted,
    )


def network_stack_ablation(
    target_bytes: int = 700_000, seed: int = 7
) -> NetworkStackResult:
    """Batch compression vs forward encoding vs both, on the wire."""
    configs = [
        ("original", ClusterConfig(dedup_enabled=False)),
        (
            "batch-snappy",
            ClusterConfig(dedup_enabled=False, batch_compression="snappy"),
        ),
        ("dbDedup", ClusterConfig(dedup=DedupConfig(chunk_size=64))),
        (
            "dbDedup+batch-snappy",
            ClusterConfig(
                dedup=DedupConfig(chunk_size=64), batch_compression="snappy"
            ),
        ),
    ]
    rows = []
    for label, config in configs:
        cluster = Cluster(config=config)
        workload = make_workload("wikipedia", seed=seed, target_bytes=target_bytes)
        result = cluster.run(workload.insert_trace())
        rows.append(
            NetworkStackRow(label=label, network_ratio=result.network_compression_ratio)
        )
    return NetworkStackResult(rows=rows)
