"""Delta-compression optimization experiment: Fig. 15.

Sweeps dbDedup's anchor interval against classic xDelta on realistic
revision pairs. Compression ratio is exact; throughput is wall-clock over
this implementation (absolute MB/s differ from the paper's C
implementation, but the *relative* curve — larger intervals buy throughput
for a small ratio loss — is the claim under test).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.bench.report import render_table
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.instructions import encoded_size
from repro.delta.xdelta import xdelta_compress
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator


def revision_pairs(
    count: int = 24, body_bytes: int = 8000, seed: int = 7
) -> list[tuple[bytes, bytes]]:
    """(source, target) pairs shaped like consecutive wiki revisions."""
    rng = random.Random(seed)
    text_gen = TextGenerator(seed)
    pairs = []
    for _ in range(count):
        base = text_gen.document(body_bytes)
        target = revise(rng, text_gen, base, num_edits=rng.randint(2, 8))
        pairs.append((base.encode(), target.encode()))
    return pairs


@dataclass(frozen=True)
class DeltaSweepRow:
    """One bar group of Fig. 15."""

    label: str
    compression_ratio: float
    throughput_mb_s: float


@dataclass
class DeltaSweepResult:
    rows: list[DeltaSweepRow]

    def row(self, label: str) -> DeltaSweepRow:
        """Look up one result row by its key; raises KeyError if absent."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            "Fig. 15: anchor-interval sweep vs xDelta (Wikipedia-style pairs)",
            ["variant", "compression ratio", "throughput MB/s"],
            [(row.label, row.compression_ratio, row.throughput_mb_s) for row in self.rows],
        )


def _measure(compress, pairs) -> DeltaSweepRow:
    raw = 0
    compressed = 0
    start = time.perf_counter()
    for src, tgt in pairs:
        delta = compress(src, tgt)
        raw += len(tgt)
        compressed += encoded_size(delta)
    elapsed = time.perf_counter() - start
    return raw, compressed, elapsed


def fig15(
    anchor_intervals: tuple[int, ...] = (16, 32, 64, 128),
    pair_count: int = 24,
    body_bytes: int = 8000,
    seed: int = 7,
) -> DeltaSweepResult:
    """Fig. 15: compression ratio and throughput vs anchor interval."""
    pairs = revision_pairs(count=pair_count, body_bytes=body_bytes, seed=seed)
    rows: list[DeltaSweepRow] = []

    raw, compressed, elapsed = _measure(xdelta_compress, pairs)
    rows.append(
        DeltaSweepRow(
            label="xDelta",
            compression_ratio=raw / compressed if compressed else 1.0,
            throughput_mb_s=raw / elapsed / 1e6 if elapsed else 0.0,
        )
    )
    for interval in anchor_intervals:
        compressor = DeltaCompressor(anchor_interval=interval)
        raw, compressed, elapsed = _measure(compressor.compress, pairs)
        rows.append(
            DeltaSweepRow(
                label=f"anchor-{interval}",
                compression_ratio=raw / compressed if compressed else 1.0,
                throughput_mb_s=raw / elapsed / 1e6 if elapsed else 0.0,
            )
        )
    return DeltaSweepResult(rows=rows)
