"""Experiment harness regenerating every table and figure of §5.

Each ``figNN`` function runs a scaled-down but structurally faithful
version of the paper's experiment and returns a result object that renders
the same rows/series the paper plots. The ``benchmarks/`` tree wires these
into pytest-benchmark and asserts the paper's *shape* claims.
"""

from repro.bench.report import render_table
from repro.bench import experiments

__all__ = ["render_table", "experiments"]
