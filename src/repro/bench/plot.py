"""Terminal plotting: ASCII line/series charts for figure output.

The paper's figures are curves (CDFs, sweeps, timelines); the bench
harness prints tables, and this module renders the same series as quick
terminal charts so shapes are visible without leaving the shell.
"""

from __future__ import annotations

from collections.abc import Sequence

_GLYPHS = "·•oxs+*"


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more ``(x, y)`` series as an ASCII chart.

    Args:
        series: label → list of points. Each series gets its own glyph.
        width/height: plot area in characters.
        title/x_label/y_label: annotations.

    Returns:
        A multi-line string; empty series produce a placeholder note.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, pts) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            column = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][column] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width // 2) + f"{x_hi:g}".rjust(width // 2)
    lines.append(" " * (margin + 1) + x_axis)
    if x_label:
        lines.append(" " * (margin + 1) + x_label.center(width))
    legend = "   ".join(
        f"{_GLYPHS[index % len(_GLYPHS)]} {label}"
        for index, label in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def ascii_cdf(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 14,
    title: str = "CDF",
) -> str:
    """Convenience wrapper for CDF curves (y in [0, 1])."""
    return ascii_plot(series, width=width, height=height, title=title,
                      y_label="frac")
