"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned monospace table with a title rule."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render the same result rows as CSV (for spreadsheets/plot scripts).

    Values containing commas or quotes are quoted per RFC 4180.
    """

    def cell(value: object) -> str:
        text = repr(value) if isinstance(value, float) else str(value)
        if any(ch in text for ch in ',"\n'):
            escaped = text.replace('"', '""')
            return f'"{escaped}"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    lines.extend(",".join(cell(value) for value in row) for row in rows)
    return "\n".join(lines)
