"""Runtime-impact experiments: Fig. 12 (throughput/latency) and Fig. 13
(caching), driven through the simulated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads import make_workload
from repro.workloads.wikipedia import WikipediaWorkload

#: The three deployment configurations of Fig. 12.
PERF_CONFIGS = ("original", "dbdedup", "snappy")


def _cluster_for(config_name: str, dedup: DedupConfig | None = None) -> Cluster:
    if config_name == "original":
        return Cluster(config=ClusterConfig(dedup_enabled=False))
    if config_name == "dbdedup":
        return Cluster(config=ClusterConfig(dedup=dedup or DedupConfig(chunk_size=64)))
    if config_name == "snappy":
        return Cluster(config=ClusterConfig(dedup_enabled=False, block_compression="snappy"))
    raise ValueError(f"unknown performance configuration {config_name!r}")


@dataclass(frozen=True)
class PerformanceRow:
    """One (workload, configuration) cell of Fig. 12."""

    workload: str
    config: str
    throughput_ops: float
    mean_latency_s: float
    p50_latency_s: float
    p999_latency_s: float
    latencies_s: tuple[float, ...]


@dataclass
class PerformanceResult:
    rows: list[PerformanceRow]

    def row(self, workload: str, config: str) -> PerformanceRow:
        """Look up one result row by its key; raises KeyError if absent."""
        for row in self.rows:
            if row.workload == workload and row.config == config:
                return row
        raise KeyError((workload, config))

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            "Fig. 12: throughput and client latency by configuration",
            ["workload", "config", "ops/s", "mean ms", "p50 ms", "p99.9 ms"],
            [
                (
                    row.workload,
                    row.config,
                    row.throughput_ops,
                    row.mean_latency_s * 1e3,
                    row.p50_latency_s * 1e3,
                    row.p999_latency_s * 1e3,
                )
                for row in self.rows
            ],
        )


def fig12(
    workloads: tuple[str, ...] = (
        "wikipedia", "enron", "stackexchange", "messageboards",
    ),
    target_bytes: int = 600_000,
    seed: int = 7,
) -> PerformanceResult:
    """Fig. 12a/b: run each workload's mixed trace under all three configs."""
    rows = []
    for name in workloads:
        for config_name in PERF_CONFIGS:
            cluster = _cluster_for(config_name)
            workload = make_workload(name, seed=seed, target_bytes=target_bytes)
            result = cluster.run(workload.mixed_trace())
            latencies = sorted(result.latencies_s)
            rows.append(
                PerformanceRow(
                    workload=name,
                    config=config_name,
                    throughput_ops=result.throughput_ops,
                    mean_latency_s=sum(latencies) / len(latencies),
                    p50_latency_s=result.latency_percentile(50),
                    p999_latency_s=result.latency_percentile(99.9),
                    latencies_s=tuple(latencies),
                )
            )
    return PerformanceResult(rows=rows)


@dataclass(frozen=True)
class RewardSweepRow:
    """One bar pair of Fig. 13a."""

    label: str
    compression_ratio: float
    normalized_ratio: float
    cache_miss_ratio: float


@dataclass
class RewardSweepResult:
    rows: list[RewardSweepRow]

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            "Fig. 13a: source record cache — reward score sweep (Wikipedia)",
            ["reward", "ratio", "normalized", "miss ratio"],
            [
                (row.label, row.compression_ratio, row.normalized_ratio,
                 row.cache_miss_ratio)
                for row in self.rows
            ],
        )


def fig13a(
    rewards: tuple[int, ...] = (0, 2, 4, 8),
    target_bytes: int = 1_200_000,
    seed: int = 7,
) -> RewardSweepResult:
    """Fig. 13a: effect of the cache and its reward score.

    The "no cache" point uses a 1-byte cache so every source retrieval
    misses; the rest sweep the cache-aware selection reward. The cache is
    scaled to the corpus (the paper pairs a 32 MB cache with a 20 GB
    dataset) so that cache residency is a meaningful signal rather than
    "everything fits".
    """
    scaled_cache = max(64 * 1024, target_bytes // 8)
    rows: list[RewardSweepRow] = []
    baseline_ratio: float | None = None
    for label, reward, cache_bytes in [
        ("no-cache", 0, 1),
        *[(str(reward), reward, scaled_cache) for reward in rewards],
    ]:
        dedup = DedupConfig(
            chunk_size=64, cache_reward=reward, source_cache_bytes=cache_bytes
        )
        cluster = Cluster(config=ClusterConfig(dedup=dedup))
        workload = make_workload("wikipedia", seed=seed, target_bytes=target_bytes)
        result = cluster.run(workload.insert_trace())
        stats = cluster.primary.engine.stats
        ratio = result.storage_compression_ratio
        if baseline_ratio is None:
            baseline_ratio = ratio
        rows.append(
            RewardSweepRow(
                label=label,
                compression_ratio=ratio,
                normalized_ratio=ratio / baseline_ratio,
                cache_miss_ratio=stats.source_cache_miss_ratio,
            )
        )
    return RewardSweepResult(rows=rows)


@dataclass
class WritebackBurstResult:
    """Fig. 13b: insert throughput over time, with/without the WB cache."""

    with_cache: list[tuple[float, float]]
    without_cache: list[tuple[float, float]]

    def mean_burst_throughput(self, timeline: list[tuple[float, float]]) -> float:
        """Mean ops/s over the non-idle timeline buckets."""
        busy = [ops for _, ops in timeline if ops > 0]
        return sum(busy) / len(busy) if busy else 0.0

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return (
            "Fig. 13b: bursty insert throughput (Wikipedia)\n"
            f"  with write-back cache:    {self.mean_burst_throughput(self.with_cache):8.1f} ops/s (busy mean)\n"
            f"  without write-back cache: {self.mean_burst_throughput(self.without_cache):8.1f} ops/s (busy mean)"
        )


def fig13b(
    target_bytes: int = 800_000,
    seed: int = 7,
    bucket_s: float = 0.25,
) -> WritebackBurstResult:
    """Fig. 13b: the lossy write-back cache under insert bursts."""
    timelines = []
    for use_cache in (True, False):
        dedup = DedupConfig(chunk_size=64)
        cluster = Cluster(config=ClusterConfig(dedup=dedup, use_writeback_cache=use_cache))
        workload = WikipediaWorkload(seed=seed, target_bytes=target_bytes)
        result = cluster.run(
            workload.bursty_insert_trace(idle_seconds=2.0, inserts_per_burst=60),
            timeline_bucket_s=bucket_s,
        )
        timelines.append(result.throughput_timeline)
    return WritebackBurstResult(with_cache=timelines[0], without_cache=timelines[1])
