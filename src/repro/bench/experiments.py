"""One import point for every table/figure experiment.

========  =============================================  ====================
Id        Paper result                                   Function
========  =============================================  ====================
Fig. 1    Headline Wikipedia compression + index memory  :func:`fig01`
Table 2   Encoding-scheme cost model                     :func:`table2`
Fig. 7    Record-size / space-saving CDFs                :func:`fig07`
Fig. 10   Compression ratio + index memory, 4 datasets   :func:`fig10`
Fig. 11   Storage vs network compression                 :func:`fig11`
Fig. 12   Throughput + latency impact                    :func:`fig12`
Fig. 13a  Source-cache reward sweep                      :func:`fig13a`
Fig. 13b  Write-back cache under bursts                  :func:`fig13b`
Fig. 14   Hop encoding vs version jumping                :func:`fig14`
Fig. 15   Anchor-interval sweep vs xDelta                :func:`fig15`
========  =============================================  ====================
"""

from repro.bench.compression import fig01, fig07, fig10, fig11
from repro.bench.delta_exp import fig15
from repro.bench.encoding_exp import fig14, table2
from repro.bench.performance import fig12, fig13a, fig13b

__all__ = [
    "fig01",
    "fig07",
    "fig10",
    "fig11",
    "fig12",
    "fig13a",
    "fig13b",
    "fig14",
    "fig15",
    "table2",
]
