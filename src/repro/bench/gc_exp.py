"""Delete-heavy GC benchmark: reclaimed storage vs foreground latency.

The tentpole question for an *online* garbage collector is not whether
it reclaims space — it is whether it reclaims space **without showing up
in the foreground tail**. This experiment replays one delete-heavy trace
(similar-record inserts, then deletes of still-referenced records
interleaved with §3.3.2 idle slices) against two identical clusters that
differ only in ``gc_enabled``, and reports, side by side:

* the live stored footprint and the monotonic ``reclaimed_bytes`` counter;
* what the collector did (batches, re-roots, tombstones, pages freed);
* the foreground operation p99 — which must match within noise, because
  every GC batch runs inside idle slices and is charged as background
  CPU/disk on the simulated cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ClusterSpec, open_cluster
from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.util.stats import percentile
from repro.workloads import make_workload
from repro.workloads.base import Operation


@dataclass(frozen=True)
class GcReclaimRow:
    """One configuration's outcome on the shared delete-heavy trace."""

    label: str
    stored_bytes: int
    reclaimed_bytes: int
    gc_batches: int
    tombstones_removed: int
    pages_freed: int
    foreground_p99_ms: float
    background_cpu_s: float


@dataclass
class GcReclaimResult:
    """GC on/off comparison on one delete-heavy trace."""

    workload: str
    rows: list[GcReclaimRow]

    def row(self, label: str) -> GcReclaimRow:
        """Look up one result row by its label; raises KeyError if absent."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    @property
    def reclaim_advantage_bytes(self) -> int:
        """Extra live-footprint bytes the collector gave back."""
        return self.row("gc-off").stored_bytes - self.row("gc-on").stored_bytes

    @property
    def p99_ratio(self) -> float:
        """Foreground p99 with GC over without (≈1.0 when invisible)."""
        off = self.row("gc-off").foreground_p99_ms
        on = self.row("gc-on").foreground_p99_ms
        return on / off if off else 1.0

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        table = render_table(
            f"GC reclaim ({self.workload}): delete-heavy trace, "
            "idle-slice collection",
            ["config", "stored KB", "reclaimed KB", "batches", "tombstones",
             "pages freed", "fg p99 ms", "bg cpu s"],
            [
                (row.label, row.stored_bytes / 1024.0,
                 row.reclaimed_bytes / 1024.0, row.gc_batches,
                 row.tombstones_removed, row.pages_freed,
                 row.foreground_p99_ms, row.background_cpu_s)
                for row in self.rows
            ],
        )
        return (
            f"{table}\n"
            f"  reclaim advantage: {self.reclaim_advantage_bytes / 1024.0:.1f}"
            f" KB  |  fg p99 ratio (on/off): {self.p99_ratio:.3f}"
        )


def delete_heavy_trace(
    workload_name: str,
    target_bytes: int,
    seed: int,
    delete_fraction: float,
    idle_every: int = 8,
    idle_seconds: float = 2.0,
) -> list[Operation]:
    """Insert a similar-record corpus, then delete a slice of it with
    idle windows interleaved — the §3.3.2 signal GC batches ride on."""
    workload = make_workload(
        workload_name, seed=seed, target_bytes=target_bytes
    )
    operations = list(workload.insert_trace())
    inserted = [op.record_id for op in operations if op.kind == "insert"]
    step = max(1, round(1.0 / delete_fraction)) if delete_fraction else 0
    victims = inserted[::step] if step else []
    for index, record_id in enumerate(victims):
        operations.append(Operation("delete", "db", record_id))
        if (index + 1) % idle_every == 0:
            operations.append(Operation("idle", idle_seconds=idle_seconds))
    operations.append(Operation("idle", idle_seconds=10.0))
    return operations


def gc_reclaim_experiment(
    workload_name: str = "wikipedia",
    target_bytes: int = 400_000,
    seed: int = 7,
    delete_fraction: float = 0.25,
    chunk_size: int = 64,
) -> GcReclaimResult:
    """Run the shared trace with and without the online collector."""
    trace = delete_heavy_trace(
        workload_name, target_bytes, seed, delete_fraction
    )
    rows = []
    for label, gc_enabled in (("gc-off", False), ("gc-on", True)):
        client = open_cluster(
            ClusterSpec(
                dedup=DedupConfig(chunk_size=chunk_size),
                gc_enabled=gc_enabled,
                gc_reclaim_threshold_bytes=4096,
            )
        )
        result = client.run(trace)
        primary = client.cluster.primary
        gc = primary.gc
        rows.append(
            GcReclaimRow(
                label=label,
                stored_bytes=primary.db.stored_bytes,
                reclaimed_bytes=primary.db.reclaimed_bytes_total,
                gc_batches=sum(gc.batches.values()),
                tombstones_removed=gc.tombstones_removed,
                pages_freed=gc.pages_freed,
                foreground_p99_ms=percentile(result.latencies_s, 99.0) * 1e3,
                background_cpu_s=primary.background_cpu_seconds,
            )
        )
    return GcReclaimResult(workload=workload_name, rows=rows)
