"""Encode-pipeline profile: per-stage instrumentation and the batch path.

Not a paper figure — an operability experiment over the staged encode
pipeline (:mod:`repro.core.pipeline`). It answers two production
questions the monolithic encoder could not:

* where does the simulated encode CPU go, stage by stage, and which
  drop reasons dominate (the HPDedup-style runtime signals)?
* what does batch admission (``insert_batch_size``) buy over per-record
  inserts on the same trace?
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads import make_workload


@dataclass
class StageRow:
    """Per-stage counters from one run."""

    stage: str
    records_in: int
    records_out: int
    drops: int
    cpu_seconds: float


@dataclass
class PipelineProfileResult:
    """Stage table plus per-record vs batched wall-clock comparison."""

    workload: str
    batch_size: int
    rows: list[StageRow]
    drop_reasons: dict[str, int]
    records_seen: int
    per_record_wall_s: float
    batched_wall_s: float

    @property
    def batch_speedup(self) -> float:
        """Wall-clock ratio of per-record over batched execution."""
        return (
            self.per_record_wall_s / self.batched_wall_s
            if self.batched_wall_s
            else 1.0
        )

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        table = render_table(
            f"encode pipeline profile ({self.workload}, "
            f"batch={self.batch_size})",
            ["stage", "in", "out", "drops", "cpu s"],
            [
                (row.stage, row.records_in, row.records_out, row.drops,
                 f"{row.cpu_seconds:.4f}")
                for row in self.rows
            ],
        )
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(self.drop_reasons.items())
        ) or "none"
        return (
            f"{table}\n"
            f"drop reasons: {reasons}\n"
            f"records: {self.records_seen}  "
            f"per-record wall: {self.per_record_wall_s:.2f}s  "
            f"batched wall: {self.batched_wall_s:.2f}s  "
            f"speedup: {self.batch_speedup:.2f}x"
        )


def pipeline_profile(
    workload_name: str = "wikipedia",
    target_bytes: int = 800_000,
    batch_size: int = 64,
    seed: int = 7,
) -> PipelineProfileResult:
    """Profile the staged pipeline on one workload, batched vs per-record.

    Runs the same insert trace twice — once record-at-a-time, once through
    the batch path — and reports the batched run's per-stage counters
    alongside the wall-clock comparison. Both runs produce identical
    encode outcomes (the equivalence the pipeline guarantees), so the
    stage table describes either.
    """
    dedup = DedupConfig(chunk_size=64)

    sequential = Cluster(config=ClusterConfig(dedup=dedup))
    workload = make_workload(workload_name, seed=seed, target_bytes=target_bytes)
    began = time.perf_counter()
    sequential.run(workload.insert_trace())
    per_record_wall = time.perf_counter() - began

    batched = Cluster(
        config=ClusterConfig(dedup=dedup, insert_batch_size=batch_size)
    )
    workload = make_workload(workload_name, seed=seed, target_bytes=target_bytes)
    began = time.perf_counter()
    batched.run(workload.insert_trace())
    batched_wall = time.perf_counter() - began

    engine = batched.primary.engine
    stats = engine.stats
    rows = [
        StageRow(
            stage=name,
            records_in=stats.stage_records_in.get(name, 0),
            records_out=stats.stage_records_out.get(name, 0),
            drops=stats.drops_at_stage(name),
            cpu_seconds=stats.stage_cpu_seconds.get(name, 0.0),
        )
        for name in engine.pipeline.stage_names()
    ]
    return PipelineProfileResult(
        workload=workload_name,
        batch_size=batch_size,
        rows=rows,
        drop_reasons=dict(stats.drop_reasons),
        records_seen=stats.records_seen,
        per_record_wall_s=per_record_wall,
        batched_wall_s=batched_wall,
    )
