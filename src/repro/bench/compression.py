"""Compression-ratio experiments: Fig. 1, Fig. 7, Fig. 10, Fig. 11.

Five storage configurations per dataset, exactly as the paper's bars:
dbDedup at 1 KB and 64 B chunks, trad-dedup at 4 KB and 64 B chunks, and
Snappy block compression alone. Every dbDedup run also applies Snappy on
top of the deduped pages, giving the stacked "additional compression"
segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.trad_dedup import TradDedupEngine
from repro.bench.report import render_table
from repro.compression.snappy import snappy_compress
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.util.stats import weighted_cdf_points
from repro.workloads import make_workload

#: The five bars of Fig. 1 / Fig. 10.
CONFIG_LABELS = (
    "dbDedup-1KB",
    "dbDedup-64B",
    "trad-dedup-4KB",
    "trad-dedup-64B",
    "Snappy",
)


@dataclass(frozen=True)
class CompressionRow:
    """One bar of Fig. 1/10: a (dataset, configuration) pair."""

    workload: str
    config: str
    dedup_ratio: float  # compression from dedup alone
    combined_ratio: float  # dedup + Snappy block compression
    index_memory_bytes: int
    network_ratio: float  # raw bytes / replicated bytes (1.0 for baselines)


@dataclass
class CompressionResult:
    """All rows for one dataset (one subplot of Fig. 10)."""

    workload: str
    rows: list[CompressionRow]

    def row(self, config: str) -> CompressionRow:
        """Look up one result row by its key; raises KeyError if absent."""
        for row in self.rows:
            if row.config == config:
                return row
        raise KeyError(config)

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            f"Fig. 10 ({self.workload}): compression ratio and index memory",
            ["config", "dedup-only", "with Snappy", "index KB", "network"],
            [
                (
                    row.config,
                    row.dedup_ratio,
                    row.combined_ratio,
                    row.index_memory_bytes / 1024.0,
                    row.network_ratio,
                )
                for row in self.rows
            ],
        )


def _run_dbdedup(
    workload_name: str, chunk_size: int, target_bytes: int, seed: int
) -> CompressionRow:
    config = ClusterConfig(
        dedup=DedupConfig(chunk_size=chunk_size),
        block_compression="snappy",
    )
    cluster = Cluster(config=config)
    workload = make_workload(workload_name, seed=seed, target_bytes=target_bytes)
    result = cluster.run(workload.insert_trace())
    return CompressionRow(
        workload=workload_name,
        config=f"dbDedup-{_size_label(chunk_size)}",
        dedup_ratio=result.storage_compression_ratio,
        combined_ratio=result.physical_compression_ratio,
        index_memory_bytes=result.index_memory_bytes,
        network_ratio=result.network_compression_ratio,
    )


def _run_trad(
    workload_name: str, chunk_size: int, target_bytes: int, seed: int
) -> CompressionRow:
    engine = TradDedupEngine(chunk_size=chunk_size)
    workload = make_workload(workload_name, seed=seed, target_bytes=target_bytes)
    unique_chunks: list[bytes] = []
    for op in workload.insert_trace():
        for chunk in engine.chunker.chunks(op.content):
            engine.stats.chunks_seen += 1
            if engine.index.observe(chunk.data):
                engine.stats.chunks_duplicate += 1
                engine.stats.stored_bytes += 20
            else:
                engine.stats.stored_bytes += len(chunk.data)
                unique_chunks.append(chunk.data)
        engine.stats.records += 1
        engine.stats.bytes_in += len(op.content)
    combined = _page_compressed_ratio(
        engine.stats.bytes_in, unique_chunks, engine.stats.stored_bytes
    )
    return CompressionRow(
        workload=workload_name,
        config=f"trad-dedup-{_size_label(chunk_size)}",
        dedup_ratio=engine.stats.compression_ratio,
        combined_ratio=combined,
        index_memory_bytes=engine.index_memory_bytes,
        network_ratio=engine.stats.compression_ratio,
    )


def _run_snappy_only(workload_name: str, target_bytes: int, seed: int) -> CompressionRow:
    config = ClusterConfig(dedup_enabled=False, block_compression="snappy")
    cluster = Cluster(config=config)
    workload = make_workload(workload_name, seed=seed, target_bytes=target_bytes)
    result = cluster.run(workload.insert_trace())
    return CompressionRow(
        workload=workload_name,
        config="Snappy",
        dedup_ratio=1.0,
        combined_ratio=result.physical_compression_ratio,
        index_memory_bytes=0,
        network_ratio=1.0,
    )


def _page_compressed_ratio(
    bytes_in: int, unique_chunks: list[bytes], stored_bytes: int
) -> float:
    """Snappy-over-trad-dedup: page-compress the unique-chunk stream."""
    page_size = 32 * 1024
    buffer = bytearray()
    compressed = 0
    duplicate_refs = stored_bytes - sum(len(chunk) for chunk in unique_chunks)
    for chunk in unique_chunks:
        buffer += chunk
        while len(buffer) >= page_size:
            compressed += len(snappy_compress(bytes(buffer[:page_size])))
            del buffer[:page_size]
    if buffer:
        compressed += len(snappy_compress(bytes(buffer)))
    total = compressed + max(0, duplicate_refs)
    return bytes_in / total if total else 1.0


def _size_label(size: int) -> str:
    return f"{size // 1024}KB" if size >= 1024 else f"{size}B"


def fig10(
    workload_name: str, target_bytes: int = 1_500_000, seed: int = 7
) -> CompressionResult:
    """One Fig. 10 subplot: all five configurations on one dataset."""
    rows = [
        _run_dbdedup(workload_name, 1024, target_bytes, seed),
        _run_dbdedup(workload_name, 64, target_bytes, seed),
        _run_trad(workload_name, 4096, target_bytes, seed),
        _run_trad(workload_name, 64, target_bytes, seed),
        _run_snappy_only(workload_name, target_bytes, seed),
    ]
    return CompressionResult(workload=workload_name, rows=rows)


def fig01(target_bytes: int = 1_500_000, seed: int = 7) -> CompressionResult:
    """The headline figure: Fig. 10's Wikipedia subplot."""
    return fig10("wikipedia", target_bytes=target_bytes, seed=seed)


@dataclass
class StorageVsNetworkRow:
    """One dataset of Fig. 11."""

    workload: str
    storage_ratio: float
    network_ratio: float

    @property
    def normalized_storage(self) -> float:
        """Storage ratio normalized to the network ratio (Fig. 11's bars)."""
        return self.storage_ratio / self.network_ratio if self.network_ratio else 1.0


@dataclass
class StorageVsNetworkResult:
    rows: list[StorageVsNetworkRow]

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return render_table(
            "Fig. 11: storage vs network compression (dbDedup, 64 B chunks)",
            ["workload", "storage ratio", "network ratio", "storage/network"],
            [
                (row.workload, row.storage_ratio, row.network_ratio,
                 row.normalized_storage)
                for row in self.rows
            ],
        )


def fig11(
    workloads: tuple[str, ...] = (
        "wikipedia", "enron", "stackexchange", "messageboards",
    ),
    target_bytes: int = 1_500_000,
    seed: int = 7,
) -> StorageVsNetworkResult:
    """Fig. 11: dbDedup's storage vs network savings per dataset."""
    rows = []
    for name in workloads:
        config = ClusterConfig(dedup=DedupConfig(chunk_size=64))
        cluster = Cluster(config=config)
        workload = make_workload(name, seed=seed, target_bytes=target_bytes)
        result = cluster.run(workload.insert_trace())
        rows.append(
            StorageVsNetworkRow(
                workload=name,
                storage_ratio=result.storage_compression_ratio,
                network_ratio=result.network_compression_ratio,
            )
        )
    return StorageVsNetworkResult(rows=rows)


@dataclass
class SizeCdfResult:
    """Fig. 7 data for one workload: record-size CDF + saving-weighted CDF."""

    workload: str
    count_cdf: list[tuple[float, float]]
    saving_cdf: list[tuple[float, float]]
    #: Fraction of total savings contributed by the largest 60 % of records.
    top60_saving_share: float

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return (
            f"Fig. 7 ({self.workload}): records={len(self.count_cdf)}, "
            f"largest 60% of records contribute "
            f"{self.top60_saving_share * 100:.1f}% of space savings"
        )


def fig07(
    workload_name: str, target_bytes: int = 1_500_000, seed: int = 7
) -> SizeCdfResult:
    """Fig. 7: where the dedup savings live in the record-size distribution."""
    config = ClusterConfig(
        dedup=DedupConfig(chunk_size=64, size_filter_enabled=False)
    )
    cluster = Cluster(config=config)
    workload = make_workload(workload_name, seed=seed, target_bytes=target_bytes)
    cluster.run(workload.insert_trace())
    samples = cluster.primary.engine.stats.saving_samples
    sizes = [float(size) for size, _ in samples]
    savings = [float(max(0, saving)) for _, saving in samples]

    ordered = sorted(zip(sizes, savings))
    count_cdf = [
        (size, (rank + 1) / len(ordered)) for rank, (size, _) in enumerate(ordered)
    ]
    saving_cdf = weighted_cdf_points(sizes, savings)

    total_saving = sum(savings)
    cut = int(len(ordered) * 0.4)  # smallest 40 % excluded
    top_saving = sum(saving for _, saving in ordered[cut:])
    share = top_saving / total_saving if total_saving else 0.0
    return SizeCdfResult(
        workload=workload_name,
        count_cdf=count_cdf,
        saving_cdf=saving_cdf,
        top60_saving_share=share,
    )
