"""Shard-scaling experiment: dedup ratio vs shard count, per placement.

The question the topology axis raises: how much of dbDedup's compression
survives partitioning the corpus across independent engines? Each shard
only deduplicates against its own records, so every entity whose
versions scatter across shards forfeits delta opportunities — the
router's ``cross_shard_misses`` counter. This experiment sweeps shard
counts under both placement strategies and emits the
dedup-ratio-vs-shard-count curve; ``prefix`` placement should hold the
N=1 ratio flat (revision chains stay co-located) while ``hash`` decays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import ClusterSpec, open_cluster
from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.workloads import make_workload


@dataclass(frozen=True)
class ShardScalingRow:
    """One (placement, shard count) sweep point."""

    placement: str
    shards: int
    storage_ratio: float
    network_ratio: float
    cross_shard_misses: int
    records_per_shard: list[int]
    invariants_ok: bool | None = None

    @property
    def shard_imbalance(self) -> float:
        """max/mean insert load across shards (1.0 = perfectly even)."""
        counts = self.records_per_shard
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0


@dataclass
class ShardScalingResult:
    """Full sweep: the dedup-ratio-vs-shard-count curve, per placement."""

    workload: str
    rows: list[ShardScalingRow] = field(default_factory=list)

    def render(self) -> str:
        """Aligned monospace table of the sweep."""
        return render_table(
            f"Shard scaling — dedup ratio vs shard count ({self.workload})",
            ["placement", "shards", "storage x", "network x",
             "cross-misses", "imbalance", "invariants"],
            [
                (
                    row.placement,
                    row.shards,
                    row.storage_ratio,
                    row.network_ratio,
                    row.cross_shard_misses,
                    row.shard_imbalance,
                    "ok" if row.invariants_ok
                    else ("-" if row.invariants_ok is None else "FAILED"),
                )
                for row in self.rows
            ],
        )


def shard_scaling(
    workload_name: str = "wikipedia",
    target_bytes: int = 400_000,
    seed: int = 7,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    placements: tuple[str, ...] = ("hash", "prefix"),
    chunk_size: int = 64,
    insert_batch_size: int = 4,
    check_invariants: bool = False,
) -> ShardScalingResult:
    """Sweep shard count x placement; measure surviving dedup ratio.

    Every sweep point replays the *same* workload trace (same seed) into
    a fresh topology, so ratio differences are attributable to placement
    alone. With ``check_invariants`` each point also runs the full
    per-shard + global invariant sweep (strict: a violation raises).
    """
    result = ShardScalingResult(workload=workload_name)
    for placement in placements:
        for shards in shard_counts:
            spec = ClusterSpec(
                dedup=DedupConfig(chunk_size=chunk_size),
                insert_batch_size=insert_batch_size,
                shards=shards,
                placement=placement,
            )
            client = open_cluster(spec)
            workload = make_workload(
                workload_name, seed=seed, target_bytes=target_bytes
            )
            run = client.run(workload.insert_trace())
            stats = client.stats()
            invariants_ok = None
            if check_invariants:
                invariants_ok = client.check_invariants(strict=True).ok
            result.rows.append(
                ShardScalingRow(
                    placement=placement,
                    shards=shards,
                    storage_ratio=run.storage_compression_ratio,
                    network_ratio=run.network_compression_ratio,
                    cross_shard_misses=stats.get("cross_shard_misses", 0),
                    records_per_shard=stats.get(
                        "records_per_shard", [stats["inserts"]]
                    ),
                    invariants_ok=invariants_ok,
                )
            )
    return result
