"""SLO sweep: max sustainable open-loop arrival rate per topology.

For each scenario in a (shards × admission mode) matrix, the experiment
replays the same multi-tenant open-loop schedule
(:mod:`repro.workloads.tenants`) and asks the production question the
closed-loop experiments cannot: *at what arrival rate does the tail
blow past the SLO?* A probe at rate scale ``s`` keeps every tenant's
work fixed but compresses its arrivals by ``s``; the scenario is
*sustainable* at ``s`` when the overall sojourn p99 (completion −
arrival, queueing included) stays within the target. A geometric
expansion followed by bisection brackets the largest sustainable scale,
reported as ``max_sustainable_rate_ops_s = s · Σ tenant base rates``.

The result renders as a table and exports as a versioned
``repro.slo/v1`` bundle (validated by ``check-metrics``): per-tenant
p50/p99/p999 sojourn, per-tenant dedup ratio, first-class event counts
(admission deferrals, backpressure stalls, failover stalls), and — per
shard count with both modes present — an inline-vs-hybrid comparison
of the *deferred* tenant's insert sojourn p99, the measurable form of
"deferring a low-yield stream takes its sketching tax off its own
arrival path".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.api import ClusterSpec, open_cluster
from repro.bench.report import render_table
from repro.core.config import DedupConfig
from repro.sim.costs import CostModel
from repro.obs.export import SLO_SCHEMA_VERSION, metrics_document
from repro.util.stats import histogram_quantile
from repro.workloads.tenants import (
    OpenLoopDriver,
    TenantSpec,
    compose_tenants,
)

#: Admission modes swept by default (inline first: the baseline the
#: comparison section is anchored on).
DEFAULT_MODES = ("inline", "hybrid")

#: Quantiles every tenant row reports, as (json key, q) pairs.
QUANTILES = (("p50_s", 0.50), ("p99_s", 0.99), ("p999_s", 0.999))

#: Default chunking-CPU scale for the sweep's cost model. The stock
#: :class:`~repro.sim.costs.CostModel` charges chunking + feature
#: extraction at a dedicated core's ~400 MB/s, which makes the
#: admission-path CPU tax invisible next to millisecond disk seeks. The
#: sweep instead models the HPDedup premise — a primary whose core is
#: shared with query processing, compaction and replication — by
#: multiplying ``cpu_chunk_byte_s`` (the per-byte cost *every* incoming
#: stream pays, yield or no yield) by this factor. Delta compression
#: keeps its paper-calibrated rate: it runs only on admitted duplicates
#: and earns its cost in network savings. This is exactly the knob that
#: makes admission policy measurable: deferring a low-yield stream
#: moves its (now expensive) sketching out of dense arrival windows.
DEFAULT_CPU_SCALE = 2000.0


@dataclass(frozen=True)
class SloScenario:
    """One topology point of the sweep matrix."""

    shards: int
    admission_mode: str
    placement: str = "prefix"
    num_secondaries: int = 1
    failover_enabled: bool = True

    @property
    def label(self) -> str:
        """Human-readable scenario key, e.g. ``shards=2/hybrid``."""
        return f"shards={self.shards}/{self.admission_mode}"


@dataclass
class SloResult:
    """Full sweep outcome: one probe row per scenario, plus comparisons."""

    seed: int
    tenants: tuple[TenantSpec, ...]
    slo_p99_s: float
    cpu_scale: float = DEFAULT_CPU_SCALE
    scenarios: list[dict] = field(default_factory=list)
    comparisons: list[dict] = field(default_factory=list)

    @property
    def base_rate_ops_s(self) -> float:
        """Sum of every tenant's base arrival rate."""
        return sum(spec.rate_ops_s for spec in self.tenants)

    def render(self) -> str:
        """Aligned monospace table of the sweep."""
        tenant_names = [spec.name for spec in self.tenants]
        rows = []
        for scenario in self.scenarios:
            per_tenant = scenario["tenants"]
            rows.append(
                (
                    scenario["label"],
                    _fmt_rate(scenario["max_sustainable_rate_ops_s"]),
                    *(
                        _fmt_q(per_tenant[name]["p99_s"])
                        for name in tenant_names
                    ),
                    int(scenario["events"].get("admission_defer", 0)),
                    int(scenario["events"].get("backpressure_stall", 0)),
                    int(scenario["events"].get("failover_stall", 0)),
                    f"{scenario['dedup_ratio']:.2f}x",
                )
            )
        table = render_table(
            f"SLO sweep — open-loop sojourn p99 <= {self.slo_p99_s * 1e3:.0f}"
            f" ms (seed={self.seed}, base rate "
            f"{self.base_rate_ops_s:.0f} ops/s)",
            ["scenario", "max rate",
             *(f"{name} p99" for name in tenant_names),
             "defers", "bp stalls", "fo stalls", "dedup"],
            rows,
        )
        for row in self.comparisons:
            who = row["tenant"] or "all tenants"
            table += (
                f"\ninsert sojourn p99 ({who}) shards={row['shards']}: "
                f"inline={_fmt_q(row['inline_insert_p99_s'])} vs "
                f"hybrid={_fmt_q(row['hybrid_insert_p99_s'])} "
                f"({row['improvement_pct']:+.1f}% better with defer)"
            )
        return table

    def document(self) -> dict:
        """The JSON-ready ``repro.slo/v1`` bundle."""
        return {
            "schema": SLO_SCHEMA_VERSION,
            "meta": {
                "seed": self.seed,
                "slo_p99_s": self.slo_p99_s,
                "cpu_scale": self.cpu_scale,
                "base_rate_ops_s": self.base_rate_ops_s,
                "tenants": [
                    {
                        "name": spec.name,
                        "workload": spec.workload,
                        "rate_ops_s": spec.rate_ops_s,
                        "target_bytes": spec.target_bytes,
                    }
                    for spec in self.tenants
                ],
            },
            "scenarios": self.scenarios,
            "comparisons": self.comparisons,
        }


def _fmt_rate(rate: float | None) -> str:
    return f"{rate:.0f} ops/s" if rate is not None else "n/a"


def _fmt_q(value: float | None) -> str:
    if value is None:
        return "inf"
    if value < 1.0:
        return f"{value * 1e3:.2f} ms"
    return f"{value:.3f} s"


def _json_quantile(value: float) -> float | None:
    """JSON-safe quantile: ``inf`` (overflow bucket) becomes ``null``."""
    return None if not math.isfinite(value) else value


def _merged_quantiles(driver: OpenLoopDriver, tenant: str) -> dict:
    """One tenant's sojourn quantiles, merged across op kinds.

    The histogram children are keyed ``(op, tenant)`` with identical
    bucket bounds, so the per-tenant distribution is the element-wise
    sum of the matching children's bucket counts.
    """
    family = driver.registry.get("op_sojourn_seconds")
    bounds: tuple[float, ...] = ()
    merged: list[int] = []
    ops = 0
    for key, child in sorted(family._children.items()):
        if key[1] != tenant:
            continue
        bounds = child.bounds
        if not merged:
            merged = list(child.bucket_counts)
        else:
            merged = [a + b for a, b in zip(merged, child.bucket_counts)]
        ops += child.count
    row: dict = {"ops": ops}
    for json_key, q in QUANTILES:
        row[json_key] = (
            _json_quantile(histogram_quantile(bounds, merged, q))
            if ops
            else None
        )
    return row


def _snapshot_family(snapshot: dict, name: str) -> list[dict]:
    family = snapshot.get(name)
    if not isinstance(family, dict):
        return []
    return family.get("values", [])


def _tenant_dedup_ratios(snapshot: dict, tenants: list[str]) -> dict:
    """Per-tenant network dedup ratio: raw bytes in / oplog bytes out.

    Rows carry a ``scope`` label (the logical database == tenant name)
    and, on sharded topologies, a ``shard`` label the sum folds away.
    """
    bytes_in: dict[str, float] = {}
    bytes_out: dict[str, float] = {}
    for out, name in (
        (bytes_in, "dedup_bytes_in_total"),
        (bytes_out, "dedup_oplog_bytes_out_total"),
    ):
        for row in _snapshot_family(snapshot, name):
            scope = row["labels"].get("scope", "")
            out[scope] = out.get(scope, 0.0) + float(row["value"])
    return {
        tenant: (
            bytes_in.get(tenant, 0.0) / bytes_out[tenant]
            if bytes_out.get(tenant)
            else 1.0
        )
        for tenant in tenants
    }


def _deferred_tenant(snapshot: dict) -> str | None:
    """The tenant with the most ``admission_defer`` events, if any.

    This is the stream whose encode work the governor moved off the
    arrival path — the one whose inline tail the comparison section
    tracks across admission modes.
    """
    defers: dict[str, float] = {}
    for row in _snapshot_family(snapshot, "slo_events_total"):
        if row["labels"].get("event") != "admission_defer":
            continue
        tenant = row["labels"].get("tenant", "")
        defers[tenant] = defers.get(tenant, 0.0) + float(row["value"])
    if not defers:
        return None
    return max(sorted(defers), key=lambda name: defers[name])


def _event_counts(snapshot: dict) -> dict[str, float]:
    """Fold ``slo_events_total`` by event kind (tenant + shard away)."""
    events: dict[str, float] = {}
    for row in _snapshot_family(snapshot, "slo_events_total"):
        event = row["labels"].get("event", "")
        events[event] = events.get(event, 0.0) + float(row["value"])
    return events


def _kind_quantile(
    driver: OpenLoopDriver, family_name: str, op: str, q: float
) -> float | None:
    """One op kind's quantile across every tenant, from one family."""
    family = driver.registry.get(family_name)
    bounds: tuple[float, ...] = ()
    merged: list[int] = []
    total = 0
    for key, child in sorted(family._children.items()):
        if key[0] != op:
            continue
        bounds = child.bounds
        if not merged:
            merged = list(child.bucket_counts)
        else:
            merged = [a + b for a, b in zip(merged, child.bucket_counts)]
        total += child.count
    if not total:
        return None
    return _json_quantile(histogram_quantile(bounds, merged, q))


def _build_client(
    scenario: SloScenario, chunk_size: int, window: int, cpu_scale: float
):
    base = CostModel()
    costs = replace(
        base, cpu_chunk_byte_s=base.cpu_chunk_byte_s * cpu_scale
    )
    spec = ClusterSpec(
        dedup=DedupConfig(chunk_size=chunk_size, governor_window=window),
        admission_mode=scenario.admission_mode,
        shards=scenario.shards,
        placement=scenario.placement,
        num_secondaries=scenario.num_secondaries,
        failover_enabled=scenario.failover_enabled,
        costs=costs,
    )
    return open_cluster(spec)


def run_probe(
    tenants: list[TenantSpec],
    scenario: SloScenario,
    seed: int,
    rate_scale: float,
    slo_p99_s: float,
    chunk_size: int = 64,
    window: int = 128,
    cpu_scale: float = DEFAULT_CPU_SCALE,
    embed_metrics: bool = False,
) -> dict:
    """One open-loop replay of the tenant schedule at ``rate_scale``.

    Returns the probe row: per-tenant quantiles/ops, event counts,
    dedup ratios, the sustainability verdict, and (optionally) the full
    embedded metrics document of the cluster.
    """
    schedule = compose_tenants(tenants, seed, rate_scale)
    client = _build_client(scenario, chunk_size, window, cpu_scale)
    driver = OpenLoopDriver(client.cluster)
    operations = driver.run(schedule)

    tenant_names = [spec.name for spec in tenants]
    snapshot = client.registry.snapshot()
    ratios = _tenant_dedup_ratios(snapshot, tenant_names)
    tenant_rows = {}
    for name in tenant_names:
        row = _merged_quantiles(driver, name)
        row["dedup_ratio"] = ratios[name]
        insert_p99 = driver.quantile(
            "op_sojourn_seconds", "insert", name, 0.99
        )
        row["insert_p99_s"] = (
            None if insert_p99 is None else _json_quantile(insert_p99)
        )
        tenant_rows[name] = row

    overall = _merged_overall_quantile(driver, 0.99)
    sustainable = overall is not None and overall <= slo_p99_s
    probe = {
        "rate_scale": rate_scale,
        "rate_ops_s": rate_scale * sum(s.rate_ops_s for s in tenants),
        "operations": operations,
        "duration_s": client.clock.now,
        "overall_p99_s": overall,
        "sustainable": sustainable,
        "tenants": tenant_rows,
        "events": _event_counts(snapshot),
        "deferred_tenant": _deferred_tenant(snapshot),
        "dedup_ratio": client.stats()["storage_compression_ratio"],
        "insert_p99_s": _kind_quantile(
            driver, "op_sojourn_seconds", "insert", 0.99
        ),
        "insert_service_p99_s": _kind_quantile(
            driver, "op_service_seconds", "insert", 0.99
        ),
        "cpu_stall_s": driver.registry.total(
            "openloop_cpu_stall_seconds_total"
        ),
    }
    if embed_metrics:
        probe["metrics"] = metrics_document(
            client.registry,
            getattr(client.cluster, "sampler", None),
            meta={"label": scenario.label, "rate_scale": rate_scale},
        )
    return probe


def _merged_overall_quantile(
    driver: OpenLoopDriver, q: float
) -> float | None:
    """Sojourn quantile over every tenant and op kind together."""
    family = driver.registry.get("op_sojourn_seconds")
    bounds: tuple[float, ...] = ()
    merged: list[int] = []
    total = 0
    for _key, child in sorted(family._children.items()):
        bounds = child.bounds
        if not merged:
            merged = list(child.bucket_counts)
        else:
            merged = [a + b for a, b in zip(merged, child.bucket_counts)]
        total += child.count
    if not total:
        return None
    value = histogram_quantile(bounds, merged, q)
    return None if not math.isfinite(value) else value


def find_max_rate(
    tenants: list[TenantSpec],
    scenario: SloScenario,
    seed: int,
    slo_p99_s: float,
    base_probe: dict,
    chunk_size: int = 64,
    window: int = 128,
    cpu_scale: float = DEFAULT_CPU_SCALE,
    doublings: int = 3,
    bisections: int = 4,
) -> tuple[float | None, list[dict]]:
    """Bracket the largest sustainable rate scale for one scenario.

    Starting from the scale-1.0 ``base_probe``: geometric expansion
    (doubling while sustainable, halving while not) finds a bracket,
    then ``bisections`` rounds tighten it. Returns
    ``(max_rate_ops_s or None, probe rows)`` — None when even the
    smallest probed scale blows the SLO.
    """

    def probe(scale: float) -> dict:
        return run_probe(
            tenants, scenario, seed, scale, slo_p99_s,
            chunk_size=chunk_size, window=window, cpu_scale=cpu_scale,
        )

    probes: list[dict] = []
    base_rate = sum(spec.rate_ops_s for spec in tenants)
    low: float | None = None  # largest known-sustainable scale
    high: float | None = None  # smallest known-unsustainable scale
    if base_probe["sustainable"]:
        low = 1.0
        scale = 1.0
        for _ in range(doublings):
            scale *= 2.0
            row = probe(scale)
            probes.append(row)
            if row["sustainable"]:
                low = scale
            else:
                high = scale
                break
    else:
        high = 1.0
        scale = 1.0
        for _ in range(doublings):
            scale /= 2.0
            row = probe(scale)
            probes.append(row)
            if row["sustainable"]:
                low = scale
                break
            high = scale
    if low is None:
        return None, probes
    if high is None:
        # Sustainable at every probed scale; report the largest probed.
        return low * base_rate, probes
    for _ in range(bisections):
        mid = (low + high) / 2.0
        row = probe(mid)
        probes.append(row)
        if row["sustainable"]:
            low = mid
        else:
            high = mid
    return low * base_rate, probes


def slo_experiment(
    tenants: list[TenantSpec],
    seed: int = 7,
    shard_counts: tuple[int, ...] = (1, 2),
    admission_modes: tuple[str, ...] = DEFAULT_MODES,
    slo_p99_s: float = 0.060,
    chunk_size: int = 64,
    window: int = 128,
    cpu_scale: float = DEFAULT_CPU_SCALE,
    rate_search: bool = True,
    doublings: int = 3,
    bisections: int = 4,
) -> SloResult:
    """The full sweep: every (shards × admission mode) scenario.

    Each scenario contributes one row built from its base (scale 1.0)
    probe — which also embeds the full metrics document for
    ``check-metrics`` reconciliation — plus, when ``rate_search`` is on,
    the bracketed max sustainable rate. Scenario pairs sharing a shard
    count with both ``inline`` and ``hybrid`` present land in the
    comparison section: the deferred tenant's insert sojourn p99 side
    by side, the direct measurement of deferred admission taking
    low-yield sketching off that stream's arrival path.
    """
    result = SloResult(
        seed=seed, tenants=tuple(tenants), slo_p99_s=slo_p99_s,
        cpu_scale=cpu_scale,
    )
    by_key: dict[tuple[int, str], dict] = {}
    for shards in shard_counts:
        for mode in admission_modes:
            scenario = SloScenario(shards=shards, admission_mode=mode)
            base = run_probe(
                tenants, scenario, seed, 1.0, slo_p99_s,
                chunk_size=chunk_size, window=window,
                cpu_scale=cpu_scale, embed_metrics=True,
            )
            max_rate: float | None = base["rate_ops_s"] if base[
                "sustainable"
            ] else None
            search_probes: list[dict] = []
            if rate_search:
                max_rate, search_probes = find_max_rate(
                    tenants, scenario, seed, slo_p99_s, base,
                    chunk_size=chunk_size, window=window,
                    cpu_scale=cpu_scale,
                    doublings=doublings, bisections=bisections,
                )
            row = {
                "label": scenario.label,
                "topology": {
                    "shards": scenario.shards,
                    "admission_mode": scenario.admission_mode,
                    "placement": scenario.placement,
                    "num_secondaries": scenario.num_secondaries,
                    "failover_enabled": scenario.failover_enabled,
                },
                "base_rate_ops_s": base["rate_ops_s"],
                "max_sustainable_rate_ops_s": max_rate,
                "tenants": base["tenants"],
                "events": base["events"],
                "dedup_ratio": base["dedup_ratio"],
                "overall_p99_s": base["overall_p99_s"],
                "insert_p99_s": base["insert_p99_s"],
                "insert_service_p99_s": base["insert_service_p99_s"],
                "cpu_stall_s": base["cpu_stall_s"],
                "deferred_tenant": base["deferred_tenant"],
                "search_probes": [
                    {
                        key: value
                        for key, value in probe.items()
                        if key != "metrics"
                    }
                    for probe in search_probes
                ],
                "metrics": base.get("metrics"),
            }
            result.scenarios.append(row)
            by_key[(shards, mode)] = row
    for shards in shard_counts:
        inline = by_key.get((shards, "inline"))
        hybrid = by_key.get((shards, "hybrid"))
        if inline is None or hybrid is None:
            continue
        # Track the stream whose work `defer` actually moved: its
        # inline-mode insert tail includes the sketching tax it pays
        # for zero yield; hybrid admission takes that off its path.
        tenant = hybrid["deferred_tenant"]
        if tenant is not None and tenant in inline["tenants"]:
            a = inline["tenants"][tenant]["insert_p99_s"]
            b = hybrid["tenants"][tenant]["insert_p99_s"]
        else:
            a = inline["insert_p99_s"]
            b = hybrid["insert_p99_s"]
        improvement = (
            100.0 * (a - b) / a if a and b is not None else 0.0
        )
        result.comparisons.append(
            {
                "shards": shards,
                "tenant": tenant,
                "inline_insert_p99_s": a,
                "hybrid_insert_p99_s": b,
                "inline_cpu_stall_s": inline["cpu_stall_s"],
                "hybrid_cpu_stall_s": hybrid["cpu_stall_s"],
                "improvement_pct": improvement,
            }
        )
    return result
