"""Simulated block device: page-granular I/O charged to the shared disk."""

from __future__ import annotations

from repro.sim.clock import SimClock
from repro.sim.disk import SimDisk


class SimBlockDevice:
    """An array of fixed-size pages persisted through a :class:`SimDisk`.

    Every read/write moves one whole page and is charged to the simulated
    disk, which is what makes buffer-pool hit ratios matter in the cost
    model.
    """

    def __init__(
        self,
        page_size: int = 32 * 1024,
        disk: SimDisk | None = None,
    ) -> None:
        if page_size < 64:
            raise ValueError(f"page_size must be >= 64, got {page_size}")
        self.page_size = page_size
        self.disk = disk if disk is not None else SimDisk(SimClock())
        self._pages: dict[int, bytes] = {}
        self._next_page = 0
        self._free_ids: list[int] = []
        #: Pages ever returned via :meth:`free` (compaction accounting).
        self.pages_freed_total = 0

    @property
    def page_count(self) -> int:
        """Number of currently allocated pages (freed pages excluded)."""
        return self._next_page - len(self._free_ids)

    @property
    def high_water_page(self) -> int:
        """One past the highest page id ever allocated."""
        return self._next_page

    def allocate(self) -> int:
        """Reserve a new page id, reusing freed ids first."""
        if self._free_ids:
            return self._free_ids.pop()
        page_id = self._next_page
        self._next_page += 1
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the allocator, dropping its image.

        Raises:
            ValueError: for unallocated or already-free page ids.
        """
        if page_id >= self._next_page or page_id in self._free_ids:
            raise ValueError(f"page {page_id} is not allocated")
        self._pages.pop(page_id, None)
        self._free_ids.append(page_id)
        self.pages_freed_total += 1

    def written_page_ids(self) -> list[int]:
        """Ids of pages holding an image, ascending."""
        return sorted(self._pages)

    def read_page(self, page_id: int) -> tuple[bytes, float]:
        """Fetch a page image; returns ``(bytes, disk latency)``.

        Raises:
            KeyError: for unallocated or never-written pages.
        """
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} has never been written")
        latency = self.disk.read(self.page_size)
        return self._pages[page_id], latency

    def write_page(self, page_id: int, image: bytes) -> float:
        """Persist a page image; returns the disk latency.

        Raises:
            ValueError: on size mismatch or unallocated page ids.
        """
        if len(image) != self.page_size:
            raise ValueError(
                f"image is {len(image)} bytes, expected {self.page_size}"
            )
        if page_id >= self._next_page:
            raise ValueError(f"page {page_id} was never allocated")
        self._pages[page_id] = bytes(image)
        return self.disk.write(self.page_size)
