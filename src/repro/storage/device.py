"""Simulated block device: page-granular I/O charged to the shared disk."""

from __future__ import annotations

from repro.sim.clock import SimClock
from repro.sim.disk import SimDisk


class SimBlockDevice:
    """An array of fixed-size pages persisted through a :class:`SimDisk`.

    Every read/write moves one whole page and is charged to the simulated
    disk, which is what makes buffer-pool hit ratios matter in the cost
    model.
    """

    def __init__(
        self,
        page_size: int = 32 * 1024,
        disk: SimDisk | None = None,
    ) -> None:
        if page_size < 64:
            raise ValueError(f"page_size must be >= 64, got {page_size}")
        self.page_size = page_size
        self.disk = disk if disk is not None else SimDisk(SimClock())
        self._pages: dict[int, bytes] = {}
        self._next_page = 0

    @property
    def page_count(self) -> int:
        """Number of pages allocated so far."""
        return self._next_page

    def allocate(self) -> int:
        """Reserve a new page id (no I/O until it is written)."""
        page_id = self._next_page
        self._next_page += 1
        return page_id

    def read_page(self, page_id: int) -> tuple[bytes, float]:
        """Fetch a page image; returns ``(bytes, disk latency)``.

        Raises:
            KeyError: for unallocated or never-written pages.
        """
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} has never been written")
        latency = self.disk.read(self.page_size)
        return self._pages[page_id], latency

    def write_page(self, page_id: int, image: bytes) -> float:
        """Persist a page image; returns the disk latency.

        Raises:
            ValueError: on size mismatch or unallocated page ids.
        """
        if len(image) != self.page_size:
            raise ValueError(
                f"image is {len(image)} bytes, expected {self.page_size}"
            )
        if page_id >= self._next_page:
            raise ValueError(f"page {page_id} was never allocated")
        self._pages[page_id] = bytes(image)
        return self.disk.write(self.page_size)
