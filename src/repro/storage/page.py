"""Slotted page: the classic variable-length-record page layout.

Layout of one ``page_size``-byte page::

    [ header 6 B | cell data grows → ...  ... ← slot directory grows ]

    header := num_slots u16 | free_start u16 | freed_bytes u16
    slot   := offset u16 | length u16       (4 B each, from the page end)

A slot with offset ``0xFFFF`` is a tombstone. Deletes and shrinking
updates leave holes that :meth:`compact` squeezes out; the page compacts
itself automatically when a hole-blocked insert would otherwise fail.
"""

from __future__ import annotations

import struct

_HEADER = struct.Struct("<HHH")
_SLOT = struct.Struct("<HH")
_TOMBSTONE = 0xFFFF


class PageFullError(Exception):
    """The page cannot hold the requested cell, even after compaction."""


class SlottedPage:
    """One fixed-size page of variable-length cells."""

    def __init__(self, page_size: int = 32 * 1024, image: bytes | None = None) -> None:
        if not 64 <= page_size <= 0xFFFF + 1:
            raise ValueError(
                f"page_size must be in [64, 65536], got {page_size}"
            )
        self.page_size = page_size
        if image is not None:
            if len(image) != page_size:
                raise ValueError(
                    f"image is {len(image)} bytes, expected {page_size}"
                )
            self._buf = bytearray(image)
        else:
            self._buf = bytearray(page_size)
            self._write_header(0, _HEADER.size, 0)

    # -- header access -------------------------------------------------------

    def _read_header(self) -> tuple[int, int, int]:
        return _HEADER.unpack_from(self._buf, 0)

    def _write_header(self, num_slots: int, free_start: int, freed: int) -> None:
        _HEADER.pack_into(self._buf, 0, num_slots, free_start, freed)

    def _slot_position(self, slot: int) -> int:
        return self.page_size - (slot + 1) * _SLOT.size

    def _read_slot(self, slot: int) -> tuple[int, int]:
        return _SLOT.unpack_from(self._buf, self._slot_position(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self._buf, self._slot_position(slot), offset, length)

    # -- public interface ------------------------------------------------------

    @property
    def num_slots(self) -> int:
        """Number of slot-directory entries (including tombstones)."""
        return self._read_header()[0]

    @property
    def live_cells(self) -> int:
        """Number of non-tombstoned slots."""
        return sum(
            1
            for slot in range(self.num_slots)
            if self._read_slot(slot)[0] != _TOMBSTONE
        )

    @property
    def free_bytes(self) -> int:
        """Bytes available for one new cell *after* compaction."""
        num_slots, free_start, freed = self._read_header()
        directory_start = self.page_size - num_slots * _SLOT.size
        return (directory_start - free_start) + freed

    @property
    def contiguous_free_bytes(self) -> int:
        """Bytes available without compaction."""
        num_slots, free_start, _ = self._read_header()
        directory_start = self.page_size - num_slots * _SLOT.size
        return directory_start - free_start

    def image(self) -> bytes:
        """The raw page bytes (for the block device / compression)."""
        return bytes(self._buf)

    def insert(self, data: bytes) -> int:
        """Store a cell; returns its slot id.

        Raises:
            PageFullError: if the cell cannot fit even after compaction.
        """
        needed = len(data) + _SLOT.size
        if needed > self.free_bytes:
            raise PageFullError(
                f"cell of {len(data)} B does not fit ({self.free_bytes} free)"
            )
        if len(data) + _SLOT.size > self.contiguous_free_bytes:
            self.compact()
        num_slots, free_start, freed = self._read_header()
        # Reuse a tombstoned slot if one exists.
        slot = next(
            (
                s
                for s in range(num_slots)
                if self._read_slot(s)[0] == _TOMBSTONE
            ),
            None,
        )
        if slot is None:
            slot = num_slots
            num_slots += 1
        self._buf[free_start : free_start + len(data)] = data
        self._write_slot(slot, free_start, len(data))
        self._write_header(num_slots, free_start + len(data), freed)
        return slot

    def get(self, slot: int) -> bytes:
        """Read a cell.

        Raises:
            KeyError: for out-of-range or tombstoned slots.
        """
        if not 0 <= slot < self.num_slots:
            raise KeyError(f"slot {slot} out of range")
        offset, length = self._read_slot(slot)
        if offset == _TOMBSTONE:
            raise KeyError(f"slot {slot} is deleted")
        return bytes(self._buf[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone a cell; its bytes become reclaimable."""
        offset, length = self._read_slot(slot)
        if not 0 <= slot < self.num_slots or offset == _TOMBSTONE:
            raise KeyError(f"slot {slot} is not live")
        num_slots, free_start, freed = self._read_header()
        self._write_slot(slot, _TOMBSTONE, 0)
        self._write_header(num_slots, free_start, freed + length)

    def update(self, slot: int, data: bytes) -> bool:
        """Replace a cell in place.

        Returns False (leaving the cell untouched) when the new data does
        not fit in this page; the caller then relocates the record.
        """
        offset, length = self._read_slot(slot)
        if not 0 <= slot < self.num_slots or offset == _TOMBSTONE:
            raise KeyError(f"slot {slot} is not live")
        if len(data) <= length:
            self._buf[offset : offset + len(data)] = data
            num_slots, free_start, freed = self._read_header()
            self._write_slot(slot, offset, len(data))
            self._write_header(num_slots, free_start, freed + (length - len(data)))
            return True
        # Try delete + reinsert within the page.
        if len(data) + 0 <= self.free_bytes + length:
            self.delete(slot)
            if len(data) > self.contiguous_free_bytes:
                self.compact()
            num_slots, free_start, freed = self._read_header()
            self._buf[free_start : free_start + len(data)] = data
            self._write_slot(slot, free_start, len(data))
            self._write_header(num_slots, free_start + len(data), freed)
            return True
        return False

    def cells(self) -> dict[int, bytes]:
        """All live cells by slot id."""
        return {
            slot: self.get(slot)
            for slot in range(self.num_slots)
            if self._read_slot(slot)[0] != _TOMBSTONE
        }

    def compact(self) -> None:
        """Squeeze out holes left by deletes and shrinking updates."""
        live = [
            (slot, self.get(slot))
            for slot in range(self.num_slots)
            if self._read_slot(slot)[0] != _TOMBSTONE
        ]
        num_slots = self.num_slots
        cursor = _HEADER.size
        for slot, data in live:
            self._buf[cursor : cursor + len(data)] = data
            self._write_slot(slot, cursor, len(data))
            cursor += len(data)
        self._write_header(num_slots, cursor, 0)
