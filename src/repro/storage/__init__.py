"""Physical storage engine: slotted pages, buffer pool, heap files.

`repro.db.pagestore.PageStore` does page-level *accounting* (enough for
every compression experiment). This package is the full physical layer
underneath it for users who want WiredTiger-like mechanics: fixed-size
slotted pages on a simulated block device, an LRU buffer pool with dirty
write-back, and a heap file mapping record ids to (page, slot) with
overflow chains for records larger than a page.

`repro.db.database.Database` accepts a :class:`HeapFileStore` in place of
the accounting store via its ``page_store`` parameter.
"""

from repro.storage.bufferpool import BufferPool
from repro.storage.device import SimBlockDevice
from repro.storage.heapfile import HeapFile, HeapFileStore
from repro.storage.page import PageFullError, SlottedPage

__all__ = [
    "SlottedPage",
    "PageFullError",
    "SimBlockDevice",
    "BufferPool",
    "HeapFile",
    "HeapFileStore",
]
