"""Heap file: record ids → slotted-page cells, with overflow chains.

The classic heap-file organization: records live in slotted pages found
through the buffer pool; a free-space map routes inserts; updates relocate
when a record outgrows its page; records larger than a page spill into a
chain of dedicated overflow pages.

:class:`HeapFileStore` adapts the heap file to the accounting interface of
:class:`repro.db.pagestore.PageStore`, so a
:class:`~repro.db.database.Database` can run on the physical engine
(``Database(page_store=HeapFileStore(...))``) and the compression
experiments then measure real page images.
"""

from __future__ import annotations

from repro.compression.block import BlockCompressor, NullCompressor
from repro.sim.disk import SimDisk
from repro.storage.bufferpool import BufferPool
from repro.storage.device import SimBlockDevice
from repro.storage.page import SlottedPage

_PAGE_OVERHEAD = 10  # header + one slot entry


class HeapFile:
    """Variable-length record store over slotted pages."""

    def __init__(
        self,
        page_size: int = 32 * 1024,
        buffer_frames: int = 64,
        disk: SimDisk | None = None,
    ) -> None:
        self.page_size = page_size
        self.device = SimBlockDevice(page_size=page_size, disk=disk)
        self.pool = BufferPool(self.device, capacity_frames=buffer_frames)
        # record id -> ("cell", page_id, slot) | ("overflow", [page_ids], length)
        self._locations: dict[str, tuple] = {}
        # page id -> free bytes, maintained for heap pages only.
        self._free_space: dict[int, int] = {}
        self._max_cell = page_size - _PAGE_OVERHEAD

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._locations

    def __len__(self) -> int:
        return len(self._locations)

    @property
    def page_count(self) -> int:
        """Number of pages allocated so far."""
        return self.device.page_count

    # -- record operations --------------------------------------------------

    def put(self, record_id: str, data: bytes) -> None:
        """Insert or replace a record."""
        if record_id in self._locations:
            self._update(record_id, data)
        else:
            self._insert(record_id, data)

    def get(self, record_id: str) -> bytes:
        """Read a record's bytes.

        Raises:
            KeyError: if the record does not exist.
        """
        location = self._locations[record_id]
        if location[0] == "cell":
            _, page_id, slot = location
            return self.pool.get(page_id).get(slot)
        _, page_ids, length = location
        pieces = [self.pool.get(page_id).get(0) for page_id in page_ids]
        return b"".join(pieces)[:length]

    def delete(self, record_id: str) -> None:
        """Remove a record, reclaiming its cell or overflow pages.

        Raises:
            KeyError: if the record does not exist.
        """
        location = self._locations.pop(record_id)
        if location[0] == "cell":
            _, page_id, slot = location
            page = self.pool.get(page_id)
            page.delete(slot)
            self.pool.mark_dirty(page_id)
            self._free_space[page_id] = page.free_bytes
        else:
            _, page_ids, _ = location
            for page_id in page_ids:
                page = self.pool.get(page_id)
                page.delete(0)
                self.pool.mark_dirty(page_id)

    def record_ids(self) -> list[str]:
        """All live record ids."""
        return list(self._locations)

    def flush(self) -> int:
        """Write all dirty pages to the device."""
        return self.pool.flush_all()

    def compact(self, occupancy_threshold: float = 0.5) -> tuple[int, int]:
        """Migrate records off sparse pages and free the empty ones.

        Heap pages whose free space is at least ``occupancy_threshold``
        of the page are retired: their live cells relocate through the
        normal insert path (reads and writes go through the buffer
        pool, so migration I/O is charged like any other), then every
        allocated page with no live cells — retired heap pages, pages
        emptied by earlier deletes, and orphaned overflow pages — is
        returned to the device allocator.

        Returns ``(pages_freed, bytes_moved)``.
        """
        cell_records: dict[int, list[str]] = {}
        for record_id, location in self._locations.items():
            if location[0] == "cell":
                cell_records.setdefault(location[1], []).append(record_id)
        sparse = [
            page_id
            for page_id, free in self._free_space.items()
            if cell_records.get(page_id)
            and free >= occupancy_threshold * self.page_size
        ]
        moved_bytes = 0
        # Most-empty first: their records fit in the least-empty pages.
        for page_id in sorted(
            sparse, key=lambda pid: (-self._free_space[pid], pid)
        ):
            relocate = [
                (record_id, self.get(record_id))
                for record_id in sorted(cell_records.get(page_id, ()))
            ]
            for record_id, _ in relocate:
                self.delete(record_id)
            # Retire the page from placement before re-inserting so the
            # records cannot land straight back on it.
            self._free_space.pop(page_id, None)
            for record_id, data in relocate:
                self._insert(record_id, data)
                moved_bytes += len(data)

        freed = 0
        for page_id in list(self._free_space):
            try:
                page = self.pool.get(page_id)
            except KeyError:
                continue
            if page.live_cells == 0:
                del self._free_space[page_id]
                self.pool.drop(page_id)
                self.device.free(page_id)
                freed += 1
        referenced = set(self._free_space)
        for location in self._locations.values():
            if location[0] == "overflow":
                referenced.update(location[1])
        for page_id in self.device.written_page_ids():
            if page_id in referenced:
                continue
            try:
                page = self.pool.get(page_id)
            except KeyError:
                continue
            if page.live_cells == 0:
                self.pool.drop(page_id)
                self.device.free(page_id)
                freed += 1
        return freed, moved_bytes

    # -- internals ------------------------------------------------------------

    def _insert(self, record_id: str, data: bytes) -> None:
        if len(data) > self._max_cell:
            self._locations[record_id] = self._insert_overflow(data)
            return
        page_id = self._find_space(len(data))
        page = self.pool.get(page_id)
        slot = page.insert(data)
        self.pool.mark_dirty(page_id)
        self._free_space[page_id] = page.free_bytes
        self._locations[record_id] = ("cell", page_id, slot)

    def _update(self, record_id: str, data: bytes) -> None:
        location = self._locations[record_id]
        if location[0] == "cell" and len(data) <= self._max_cell:
            _, page_id, slot = location
            page = self.pool.get(page_id)
            if page.update(slot, data):
                self.pool.mark_dirty(page_id)
                self._free_space[page_id] = page.free_bytes
                return
        # Relocate: delete + fresh insert.
        self.delete(record_id)
        self._insert(record_id, data)

    def _insert_overflow(self, data: bytes) -> tuple:
        chunk = self._max_cell
        page_ids = []
        for start in range(0, len(data), chunk):
            page_id, page = self.pool.create()
            page.insert(data[start : start + chunk])
            page_ids.append(page_id)
        return ("overflow", page_ids, len(data))

    def _find_space(self, needed: int) -> int:
        needed_with_slot = needed + 4
        for page_id, free in self._free_space.items():
            if free >= needed_with_slot:
                return page_id
        page_id, page = self.pool.create()
        self._free_space[page_id] = page.free_bytes
        return page_id


class HeapFileStore:
    """PageStore-compatible adapter over a :class:`HeapFile`.

    Lets :class:`repro.db.database.Database` run on real slotted pages;
    ``physical_bytes`` compresses actual page images rather than an
    idealized concatenation.
    """

    def __init__(
        self,
        page_size: int = 32 * 1024,
        compressor: BlockCompressor | None = None,
        buffer_frames: int = 64,
        disk: SimDisk | None = None,
    ) -> None:
        self.heap = HeapFile(
            page_size=page_size, buffer_frames=buffer_frames, disk=disk
        )
        self.compressor = compressor if compressor is not None else NullCompressor()
        self._sizes: dict[str, int] = {}
        #: Monotonic bytes ever written (places + rewrites).
        self.bytes_written_total = 0
        #: Monotonic bytes reclaimed (removals + shrinking rewrites);
        #: ``written - reclaimed == logical_bytes`` at all times.
        self.bytes_reclaimed_total = 0
        #: Pages returned to the allocator by :meth:`compact`.
        self.pages_freed_total = 0

    def __contains__(self, record_id: str) -> bool:
        return record_id in self.heap

    @property
    def page_count(self) -> int:
        """Number of pages allocated so far."""
        return self.heap.page_count

    def place(self, record_id: str, payload: bytes) -> int:
        """Store a new record's payload."""
        self.heap.put(record_id, payload)
        self.bytes_written_total += len(payload)
        self.bytes_reclaimed_total += self._sizes.get(record_id, 0)
        self._sizes[record_id] = len(payload)
        return 0

    def update(self, record_id: str, payload: bytes) -> int:
        """Replace a record's content."""
        self.heap.put(record_id, payload)
        self.bytes_written_total += len(payload)
        self.bytes_reclaimed_total += self._sizes.get(record_id, 0)
        self._sizes[record_id] = len(payload)
        return 0

    def remove(self, record_id: str) -> None:
        """Drop a record (idempotent)."""
        if record_id in self.heap:
            self.heap.delete(record_id)
        self.bytes_reclaimed_total += self._sizes.pop(record_id, 0)

    def compact(self) -> tuple[int, int]:
        """Migrate sparse pages and free empty ones; see
        :meth:`HeapFile.compact`. Returns ``(pages_freed, bytes_moved)``."""
        freed, moved = self.heap.compact()
        self.pages_freed_total += freed
        return freed, moved

    @property
    def logical_bytes(self) -> int:
        """Bytes stored before block compression."""
        return sum(self._sizes.values())

    def physical_bytes(self) -> int:
        """Compressed size of every live page image."""
        self.heap.flush()
        total = 0
        for page_id in self.heap.device.written_page_ids():
            try:
                image, _ = self.heap.device.read_page(page_id)
            except KeyError:
                continue
            page = SlottedPage(self.heap.page_size, image=image)
            if page.live_cells == 0:
                continue
            total += len(self.compressor.compress(image))
        return total
