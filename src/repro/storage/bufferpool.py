"""Buffer pool: cached slotted pages with LRU eviction and dirty write-back."""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.device import SimBlockDevice
from repro.storage.page import SlottedPage


class BufferPool:
    """Frame cache between the heap file and the block device.

    Pages are fetched through :meth:`get` (reading from the device on a
    miss), mutated in place, and marked dirty with :meth:`mark_dirty`;
    eviction and :meth:`flush_all` write dirty frames back. Capacity is a
    frame count, as in real engines.
    """

    def __init__(self, device: SimBlockDevice, capacity_frames: int = 64) -> None:
        if capacity_frames < 1:
            raise ValueError(
                f"capacity_frames must be >= 1, got {capacity_frames}"
            )
        self.device = device
        self.capacity_frames = capacity_frames
        self._frames: OrderedDict[int, SlottedPage] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def hit_ratio(self) -> float:
        """Fraction of page fetches served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, page_id: int) -> SlottedPage:
        """The cached page, fetched from the device on a miss."""
        page = self._frames.get(page_id)
        if page is not None:
            self._frames.move_to_end(page_id)
            self.hits += 1
            return page
        self.misses += 1
        image, _ = self.device.read_page(page_id)
        page = SlottedPage(self.device.page_size, image=image)
        self._admit(page_id, page)
        return page

    def create(self) -> tuple[int, SlottedPage]:
        """Allocate a fresh page, resident and dirty."""
        page_id = self.device.allocate()
        page = SlottedPage(self.device.page_size)
        self._admit(page_id, page)
        self._dirty.add(page_id)
        return page_id, page

    def drop(self, page_id: int) -> None:
        """Discard a page's frame without writing it back (page freed)."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)

    def mark_dirty(self, page_id: int) -> None:
        """Record that a resident page's contents changed.

        Raises:
            KeyError: if the page is not resident (mutating a non-resident
                page is a caller bug).
        """
        if page_id not in self._frames:
            raise KeyError(f"page {page_id} is not resident")
        self._dirty.add(page_id)

    def flush_all(self) -> int:
        """Write every dirty frame back; returns pages written."""
        written = 0
        for page_id in sorted(self._dirty):
            page = self._frames.get(page_id)
            if page is not None:
                self.device.write_page(page_id, page.image())
                written += 1
        self._dirty.clear()
        return written

    def _admit(self, page_id: int, page: SlottedPage) -> None:
        self._frames[page_id] = page
        self._frames.move_to_end(page_id)
        while len(self._frames) > self.capacity_frames:
            victim_id, victim = self._frames.popitem(last=False)
            if victim_id in self._dirty:
                self.device.write_page(victim_id, victim.image())
                self._dirty.discard(victim_id)
            self.evictions += 1
