"""Rolling Rabin-style fingerprints for content-defined chunking (§3.1.1).

The chunker declares a boundary wherever the low bits of the window hash
match a fixed pattern, so boundaries move with content instead of offsets —
an insertion early in a record only shifts the chunks it touches.

Two implementations of the same hash function:

* :func:`rolling_rabin` — numpy-vectorized, computes the window hash at
  *every* position of a buffer at once. This is the hot path: chunking
  touches every byte of every record.
* :class:`RabinHasher` — byte-at-a-time reference implementation, used by
  the tests to cross-check the vectorized path and by callers that stream.

Both compute the multiplicative rolling hash

    H(i) = sum_{j=0..w-1} data[i+j] * P^(w-1-j)  (mod 2^64)

with an odd multiplier ``P``. Oddness makes ``P`` invertible mod 2^64, which
lets the vectorized path express every window hash through one prefix sum:

    H(i) = P^(i+w-1) * (S[i+w] - S[i])  where  S[k] = sum_{j<k} data[j] * P^-j

numpy's uint64 arithmetic wraps modulo 2^64 natively, so no bigints appear.
"""

from __future__ import annotations

import numpy as np

#: Default multiplier. Any odd 64-bit constant with good bit mixing works;
#: this one is the golden-ratio multiplier used by many Rabin-Karp variants.
DEFAULT_PRIME = 0x9E3779B97F4A7C15

#: Default window width in bytes, matching common CDC deployments.
DEFAULT_WINDOW = 48

_MASK64 = (1 << 64) - 1


class RabinHasher:
    """Streaming rolling hash over a fixed-width byte window.

    Push bytes with :meth:`update`; :attr:`value` is the hash of the last
    ``window`` bytes seen (or of everything seen, while fewer than ``window``
    bytes have been pushed).
    """

    def __init__(self, window: int = DEFAULT_WINDOW, prime: int = DEFAULT_PRIME) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if prime % 2 == 0:
            raise ValueError("prime must be odd so it is invertible mod 2^64")
        self.window = window
        self.prime = prime
        # P^(w-1): weight of the byte about to leave the window.
        self._top_weight = pow(prime, window - 1, 1 << 64)
        self._buffer: list[int] = []
        self._pos = 0
        self.value = 0

    def update(self, byte: int) -> int:
        """Roll one byte into the window and return the new hash value."""
        if len(self._buffer) < self.window:
            self._buffer.append(byte)
            self.value = ((self.value * self.prime) + byte) & _MASK64
        else:
            oldest = self._buffer[self._pos]
            self._buffer[self._pos] = byte
            self._pos = (self._pos + 1) % self.window
            self.value = (
                (self.value - oldest * self._top_weight) * self.prime + byte
            ) & _MASK64
        return self.value

    def reset(self) -> None:
        """Forget all pushed bytes."""
        self._buffer.clear()
        self._pos = 0
        self.value = 0


def rolling_rabin(
    data: bytes, window: int = DEFAULT_WINDOW, prime: int = DEFAULT_PRIME
) -> np.ndarray:
    """Window hashes at every position of ``data``, vectorized.

    Returns:
        uint64 array of length ``len(data) - window + 1`` where entry ``i``
        is the hash of ``data[i:i+window]``. Empty array if ``data`` is
        shorter than ``window``.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if prime % 2 == 0:
        raise ValueError("prime must be odd so it is invertible mod 2^64")
    n = len(data)
    if n < window:
        return np.empty(0, dtype=np.uint64)

    buf = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
    inv = pow(prime, -1, 1 << 64)

    # inv_powers[j] = P^-j, powers[i] = P^i; both via wrapping cumprod.
    count = n - window + 1
    inv_powers = _power_ladder(inv, n)
    powers = _power_ladder(prime, count + window - 1)

    weighted = buf * inv_powers
    prefix = np.zeros(n + 1, dtype=np.uint64)
    np.cumsum(weighted, out=prefix[1:])

    spans = prefix[window : window + count] - prefix[:count]
    return spans * powers[window - 1 : window - 1 + count]


def _power_ladder(base: int, length: int) -> np.ndarray:
    """Return ``[base^0, base^1, ..., base^(length-1)]`` mod 2^64."""
    ladder = np.empty(length, dtype=np.uint64)
    if length == 0:
        return ladder
    ladder[0] = 1
    if length > 1:
        ladder[1:] = base & _MASK64
        np.multiply.accumulate(ladder, out=ladder)
    return ladder
