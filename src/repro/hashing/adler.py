"""Rolling Adler-32 block checksums for delta compression (§4.2).

xDelta (and dbDedup's anchor-sampled variant) fingerprint fixed-width byte
blocks with Adler-32 — "the same fingerprint function used in gzip" — to
find candidate match offsets between source and target streams.

:func:`rolling_adler32` computes the checksum of the window starting at
*every* position in one numpy pass; :func:`adler32_block` is the scalar
reference used for cross-checking and for single lookups.
"""

from __future__ import annotations

import numpy as np

_MOD = 65521  # largest prime below 2^16, per RFC 1950


def adler32_block(data: bytes, start: int = 0, width: int | None = None) -> int:
    """Adler-32 of ``data[start:start+width]`` (whole tail if width is None)."""
    if width is None:
        width = len(data) - start
    a = 1
    b = 0
    for offset in range(start, start + width):
        a += data[offset]
        b += a
    return ((b % _MOD) << 16) | (a % _MOD)


def rolling_adler32(data: bytes, width: int) -> np.ndarray:
    """Adler-32 of the ``width``-byte window at every position of ``data``.

    Returns:
        uint32 array of length ``len(data) - width + 1``; entry ``i`` equals
        ``adler32_block(data, i, width)``. Empty array if the buffer is
        shorter than the window.

    The A component of a window is ``1 + sum(bytes)``; the B component is
    ``width + sum((width - j) * byte_j)``. Both reduce to differences of two
    prefix sums, so the whole computation is three vector ops. int64 prefix
    sums stay exact for buffers up to several hundred MB, far beyond any
    database record.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    n = len(data)
    if n < width:
        return np.empty(0, dtype=np.uint32)

    buf = np.frombuffer(data, dtype=np.uint8).astype(np.int64)
    count = n - width + 1

    prefix = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(buf, out=prefix[1:])
    window_sums = prefix[width:] - prefix[:count]

    positions = np.arange(n, dtype=np.int64)
    weighted_prefix = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(buf * positions, out=weighted_prefix[1:])
    # sum over window of (t - i) * data[t], for window start i:
    offset_sums = (
        weighted_prefix[width:]
        - weighted_prefix[:count]
        - positions[:count] * window_sums
    )

    a = (1 + window_sums) % _MOD
    b = (width + width * window_sums - offset_sums) % _MOD
    return ((b.astype(np.uint32)) << np.uint32(16)) | a.astype(np.uint32)
