"""MurmurHash3 (x86, 32-bit) — the chunk-identity hash of dbDedup.

dbDedup indexes only a sampled subset of chunk hashes and verifies every
byte during delta compression, so it can afford a weak-but-fast hash
(§3.1.1): "it can use the MurmurHash algorithm instead of SHA-1 to reduce
the computation overhead in chunk hash calculation."

This is a faithful pure-Python port of Austin Appleby's reference
``MurmurHash3_x86_32``; test vectors in ``tests/hashing/test_murmur.py``
pin it against published digests. :func:`murmur3_32_u64_batch` is the
numpy bulk lane for the fixed 8-byte-integer keys the feature index
hashes by the million — byte-identical to calling :func:`murmur3_32` on
``value.to_bytes(8, "little")`` for every element.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF
_C1 = 0xCC9E2D51
_C2 = 0x1B873593


def _rotl32(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (32 - shift))) & _MASK32


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """Return the 32-bit MurmurHash3 of ``data`` with the given ``seed``."""
    length = len(data)
    h = seed & _MASK32
    rounded = length - (length & 3)

    for start in range(0, rounded, 4):
        k = int.from_bytes(data[start : start + 4], "little")
        k = (k * _C1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK32
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK32

    k = 0
    tail = length & 3
    if tail >= 3:
        k ^= data[rounded + 2] << 16
    if tail >= 2:
        k ^= data[rounded + 1] << 8
    if tail >= 1:
        k ^= data[rounded]
        k = (k * _C1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK32
        h ^= k

    h ^= length
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def murmur3_32_u64_batch(values, seed: int = 0):
    """MurmurHash3 of each integer's 8-byte little-endian form, vectorized.

    ``values`` is any sequence of unsigned 64-bit integers (or a numpy
    ``uint64`` array); the result is a ``uint32`` array where element *i*
    equals ``murmur3_32(values[i].to_bytes(8, "little"), seed)``. An
    8-byte key is exactly two murmur body blocks with an empty tail, so
    the whole digest unrolls into a fixed chain of wrapping ``uint32``
    array ops — the bulk lane the feature-index scale probes use to hash
    tens of millions of features in seconds instead of minutes.
    """
    import numpy as np

    v = np.ascontiguousarray(values, dtype=np.uint64)
    c1 = np.uint32(_C1)
    c2 = np.uint32(_C2)
    h = np.full(v.shape, seed & _MASK32, dtype=np.uint32)
    for block in (
        (v & np.uint64(_MASK32)).astype(np.uint32),
        (v >> np.uint64(32)).astype(np.uint32),
    ):
        k = block * c1
        k = (k << np.uint32(15)) | (k >> np.uint32(17))
        k = k * c2
        h ^= k
        h = (h << np.uint32(13)) | (h >> np.uint32(19))
        h = h * np.uint32(5) + np.uint32(0xE6546B64)
    h ^= np.uint32(8)  # length
    h ^= h >> np.uint32(16)
    h = h * np.uint32(0x85EBCA6B)
    h ^= h >> np.uint32(13)
    h = h * np.uint32(0xC2B2AE35)
    h ^= h >> np.uint32(16)
    return h
