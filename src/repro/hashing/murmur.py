"""MurmurHash3 (x86, 32-bit) — the chunk-identity hash of dbDedup.

dbDedup indexes only a sampled subset of chunk hashes and verifies every
byte during delta compression, so it can afford a weak-but-fast hash
(§3.1.1): "it can use the MurmurHash algorithm instead of SHA-1 to reduce
the computation overhead in chunk hash calculation."

This is a faithful pure-Python port of Austin Appleby's reference
``MurmurHash3_x86_32``; test vectors in ``tests/hashing/test_murmur.py``
pin it against published digests.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF
_C1 = 0xCC9E2D51
_C2 = 0x1B873593


def _rotl32(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (32 - shift))) & _MASK32


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """Return the 32-bit MurmurHash3 of ``data`` with the given ``seed``."""
    length = len(data)
    h = seed & _MASK32
    rounded = length - (length & 3)

    for start in range(0, rounded, 4):
        k = int.from_bytes(data[start : start + 4], "little")
        k = (k * _C1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK32
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK32

    k = 0
    tail = length & 3
    if tail >= 3:
        k ^= data[rounded + 2] << 16
    if tail >= 2:
        k ^= data[rounded + 1] << 8
    if tail >= 1:
        k ^= data[rounded]
        k = (k * _C1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK32
        h ^= k

    h ^= length
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h
