"""Hash primitives used by chunking, sketching, and delta compression.

The paper's pipeline needs three different hashes, each chosen for a
different speed/strength trade-off (§3.1.1, §4.2):

* Gear hash — table-driven rolling hash for content-defined chunk
  boundaries (the hot path; one lookup + shift-add per byte, and a
  six-pass numpy sweep in bulk).
* Rabin fingerprints — the original polynomial rolling hash, retained as
  a reference primitive.
* MurmurHash3 — cheap, non-cryptographic chunk identity for the similarity
  sketch (collisions are tolerable because delta compression verifies bytes).
* Rolling Adler-32 — the block checksum xDelta/dbDelta use to find candidate
  match offsets between a source and a target byte stream.
* SHA-1 — collision-resistant chunk identity for the trad-dedup baseline,
  where a collision would corrupt data.
"""

from repro.hashing.adler import adler32_block, rolling_adler32
from repro.hashing.gear import GearHasher, gear_hashes, gear_table
from repro.hashing.murmur import murmur3_32
from repro.hashing.rabin import RabinHasher, rolling_rabin

__all__ = [
    "murmur3_32",
    "GearHasher",
    "gear_hashes",
    "gear_table",
    "RabinHasher",
    "rolling_rabin",
    "adler32_block",
    "rolling_adler32",
]
