"""Statistics helpers used by the benchmark harness and caches.

These are deliberately dependency-light (plain Python plus ``math``) so that
core-library modules can import them without dragging numpy into hot paths
that do not need it.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


class RunningStats:
    """Single-pass mean/variance/min/max accumulator (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of observations so far (0.0 if empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of observations so far."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)


def percentile(values: Sequence[float], pct: float) -> float:
    """Return the ``pct`` percentile (0–100) with linear interpolation.

    Raises:
        ValueError: if ``values`` is empty or ``pct`` is outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def histogram_quantile(
    bounds: Sequence[float], bucket_counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q`` quantile (0–1) of a fixed-bucket histogram.

    ``bounds`` are inclusive upper bucket bounds; ``bucket_counts`` has
    one extra trailing entry — the overflow bucket. The estimate
    interpolates linearly within the bucket holding the target rank
    (the first bucket's lower edge is 0), matching the
    ``histogram_quantile`` convention of Prometheus.

    Overflow semantics are explicit: when the target rank falls in the
    overflow bucket there is no upper edge to interpolate against, so
    the result is ``math.inf`` — callers decide how to render "beyond
    the last bucket" rather than receiving a silently clamped value.

    Raises:
        ValueError: if ``q`` is outside [0, 1], the histogram is empty,
            or ``bucket_counts`` does not have ``len(bounds) + 1``
            entries.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    if len(bucket_counts) != len(bounds) + 1:
        raise ValueError(
            f"bucket_counts needs len(bounds)+1 = {len(bounds) + 1} "
            f"entries, got {len(bucket_counts)}"
        )
    total = sum(bucket_counts)
    if total <= 0:
        raise ValueError("quantile of empty histogram")
    target = q * total
    cumulative = 0.0
    for index, count in enumerate(bucket_counts):
        if count <= 0:
            continue
        if cumulative + count >= target:
            if index == len(bounds):
                return math.inf
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (target - cumulative) / count
            return lower + fraction * (upper - lower)
        cumulative += count
    return math.inf  # pragma: no cover — loop always hits the target


def cdf_points(values: Iterable[float]) -> list[tuple[float, float]]:
    """Return ``(value, cumulative_fraction)`` pairs for an empirical CDF."""
    ordered = sorted(values)
    total = len(ordered)
    if not total:
        return []
    return [(value, (rank + 1) / total) for rank, value in enumerate(ordered)]


def weighted_cdf_points(
    values: Iterable[float], weights: Iterable[float]
) -> list[tuple[float, float]]:
    """Empirical CDF where each value contributes its weight, not 1.

    Used for Fig. 7: the space-saving CDF weights each record by the bytes of
    saving it contributed.
    """
    pairs = sorted(zip(values, weights))
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        return []
    points = []
    cumulative = 0.0
    for value, weight in pairs:
        cumulative += weight
        points.append((value, cumulative / total))
    return points
