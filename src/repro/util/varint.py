"""Unsigned LEB128 variable-length integers.

The delta instruction wire format (:mod:`repro.delta.instructions`) and the
Snappy block format (:mod:`repro.compression.snappy`) both store lengths and
offsets as varints so that small values — the common case for database
records — cost a single byte.
"""

from __future__ import annotations


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint.

    Raises:
        ValueError: if ``value`` is negative.
    """
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 varint from ``data`` starting at ``offset``.

    Returns:
        ``(value, next_offset)`` where ``next_offset`` is the index of the
        first byte after the varint.

    Raises:
        ValueError: if the buffer ends mid-varint.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
