"""Small shared utilities: varint codec, statistics helpers."""

from repro.util.varint import decode_uvarint, encode_uvarint
from repro.util.stats import RunningStats, cdf_points, percentile, weighted_cdf_points

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "RunningStats",
    "percentile",
    "cdf_points",
    "weighted_cdf_points",
]
