"""Once-per-process deprecation warnings for the legacy constructor paths.

The public entry point of the library is :mod:`repro.api`
(:class:`~repro.api.ClusterSpec` + :func:`~repro.api.open_cluster`).
The pre-redesign constructors — ``Cluster(config, costs)``,
``PrimaryNode(clock, ...)``, ``DedupEngine(config, costs)`` — accepted a
pile of positional arguments that every call site wired by hand; those
positional paths now live behind :func:`positional_shim`, which keeps
them working, emits one :class:`DeprecationWarning` per constructor per
process, and delegates to the keyword-only implementation.

Warning once (not per call) keeps bulk call sites — a test suite builds
hundreds of clusters — from drowning real warnings; tests that assert on
the warning call :func:`reset_deprecation_warnings` first.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable

_WARNED: set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> bool:
    """Emit ``message`` as a DeprecationWarning the first time ``key`` is seen.

    Returns True when the warning actually fired (first use), False on
    every later call with the same key.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset_deprecation_warnings() -> None:
    """Forget which keys already warned (test isolation helper)."""
    _WARNED.clear()


def positional_shim(
    order: tuple[str, ...], key: str, message: str
) -> Callable:
    """Decorator: accept legacy positional arguments on a keyword-only init.

    ``order`` is the historical positional parameter order. Calls that
    pass positional arguments are mapped onto keywords, warn once per
    ``key``, and delegate; keyword-only calls pass through untouched, so
    the migrated code path pays nothing.
    """

    def decorate(init: Callable) -> Callable:
        @functools.wraps(init)
        def wrapper(self, *args, **kwargs):
            if args:
                if len(args) > len(order):
                    raise TypeError(
                        f"{key}() takes at most {len(order)} positional "
                        f"arguments ({len(args)} given)"
                    )
                warn_once(key, message)
                for name, value in zip(order, args):
                    if name in kwargs:
                        raise TypeError(
                            f"{key}() got multiple values for argument "
                            f"{name!r}"
                        )
                    kwargs[name] = value
            return init(self, **kwargs)

        return wrapper

    return decorate
