"""From-scratch Snappy block compressor (wire-format compatible).

MongoDB's default block compressor — the "Snappy" bars of Fig. 1/10 — is
an LZ77 byte compressor tuned for speed over ratio. This implementation
follows Google's format description (``format_description.txt``):

* preamble: uncompressed length as a varint;
* literal elements: tag ``(len-1)<<2 | 0b00`` (lengths > 60 spill into
  1–4 extra little-endian bytes);
* copy elements: 1-byte-offset (``0b01``, len 4–11, 11-bit offset),
  2-byte-offset (``0b10``, len 1–64, 16-bit offset) and 4-byte-offset
  (``0b11``) forms.

The match finder is the reference scheme: a hash table over 4-byte
sequences, greedy emission, copies split into ≤64-byte ops. Hashes for
every position are precomputed with numpy, so the Python loop touches only
literal runs and match skips.
"""

from __future__ import annotations

import numpy as np

from repro.util.varint import decode_uvarint, encode_uvarint

_HASH_BITS = 14
_TABLE_SIZE = 1 << _HASH_BITS
_MIN_MATCH = 4
_MAX_COPY_LEN = 64
_MAX_OFFSET_2B = 65535


def _quad_values(data: bytes) -> np.ndarray:
    """Little-endian uint32 of the 4 bytes at every position (vectorized)."""
    buf = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    return (
        buf[:-3]
        | (buf[1:-2] << np.uint32(8))
        | (buf[2:-1] << np.uint32(16))
        | (buf[3:] << np.uint32(24))
    )


def _emit_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    length = end - start
    if length <= 0:
        return
    remaining = length - 1
    if remaining < 60:
        out.append(remaining << 2)
    else:
        extra = (remaining.bit_length() + 7) // 8
        out.append((59 + extra) << 2)
        out += remaining.to_bytes(extra, "little")
    out += data[start:end]


def _emit_copy(out: bytearray, offset: int, length: int) -> None:
    while length > 0:
        if 4 <= length <= 11 and offset < 2048:
            out.append(0x01 | ((length - 4) << 2) | ((offset >> 8) << 5))
            out.append(offset & 0xFF)
            return
        chunk = min(length, _MAX_COPY_LEN)
        if offset <= _MAX_OFFSET_2B:
            out.append(0x02 | ((chunk - 1) << 2))
            out += offset.to_bytes(2, "little")
        else:
            out.append(0x03 | ((chunk - 1) << 2))
            out += offset.to_bytes(4, "little")
        length -= chunk


def snappy_compress(data: bytes) -> bytes:
    """Compress ``data`` into the Snappy block format."""
    out = bytearray(encode_uvarint(len(data)))
    n = len(data)
    if n < _MIN_MATCH:
        _emit_literal(out, data, 0, n)
        return bytes(out)

    quads = _quad_values(data)
    hashes = ((quads * np.uint32(0x1E35A7BD)) >> np.uint32(32 - _HASH_BITS)).astype(
        np.int64
    )
    table = np.full(_TABLE_SIZE, -1, dtype=np.int64)

    literal_start = 0
    pos = 0
    scan_end = n - _MIN_MATCH
    quads_list = quads  # local alias for speed
    while pos <= scan_end:
        bucket = int(hashes[pos])
        candidate = int(table[bucket])
        table[bucket] = pos
        if candidate < 0 or quads_list[candidate] != quads_list[pos]:
            pos += 1
            continue
        # Verified 4-byte match; extend forward.
        length = _MIN_MATCH
        limit = n - pos
        while (
            length < limit and data[candidate + length] == data[pos + length]
        ):
            length += 1
        _emit_literal(out, data, literal_start, pos)
        _emit_copy(out, pos - candidate, length)
        # Seed the table inside the match sparsely so later data can refer
        # back into it without paying a per-byte loop.
        for seed in range(pos + 1, min(pos + length, scan_end), 13):
            table[int(hashes[seed])] = seed
        pos += length
        literal_start = pos
    _emit_literal(out, data, literal_start, n)
    return bytes(out)


def snappy_decompress(payload: bytes) -> bytes:
    """Decompress a Snappy block; validates length and element bounds.

    Raises:
        ValueError: on any malformed element or length mismatch.
    """
    expected, pos = decode_uvarint(payload, 0)
    out = bytearray()
    end = len(payload)
    while pos < end:
        tag = payload[pos]
        pos += 1
        kind = tag & 0x03
        if kind == 0x00:  # literal
            length = (tag >> 2) + 1
            if length > 60:
                extra = length - 60
                if pos + extra > end:
                    raise ValueError("truncated literal length")
                length = int.from_bytes(payload[pos : pos + extra], "little") + 1
                pos += extra
            if pos + length > end:
                raise ValueError("truncated literal data")
            out += payload[pos : pos + length]
            pos += length
            continue
        if kind == 0x01:  # copy, 1-byte offset
            length = ((tag >> 2) & 0x07) + 4
            if pos >= end:
                raise ValueError("truncated copy-1 offset")
            offset = ((tag >> 5) << 8) | payload[pos]
            pos += 1
        elif kind == 0x02:  # copy, 2-byte offset
            length = (tag >> 2) + 1
            if pos + 2 > end:
                raise ValueError("truncated copy-2 offset")
            offset = int.from_bytes(payload[pos : pos + 2], "little")
            pos += 2
        else:  # copy, 4-byte offset
            length = (tag >> 2) + 1
            if pos + 4 > end:
                raise ValueError("truncated copy-4 offset")
            offset = int.from_bytes(payload[pos : pos + 4], "little")
            pos += 4
        if offset == 0 or offset > len(out):
            raise ValueError(f"copy offset {offset} outside window of {len(out)}")
        start = len(out) - offset
        # Overlapping copies replicate recent output (RLE-style), so extend
        # chunk by chunk instead of slicing once.
        while length > 0:
            span = min(length, offset)
            out += out[start : start + span]
            start += span
            length -= span
    if len(out) != expected:
        raise ValueError(f"decompressed {len(out)} bytes, header said {expected}")
    return bytes(out)


class SnappyCompressor:
    """Block-compressor interface wrapper around the module functions."""

    name = "snappy"

    def compress(self, data: bytes) -> bytes:
        """Compress one block."""
        return snappy_compress(data)

    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress` exactly."""
        return snappy_decompress(payload)
