"""Block-compressor protocol plus the trivial and zlib-backed variants."""

from __future__ import annotations

import zlib
from typing import Protocol, runtime_checkable


@runtime_checkable
class BlockCompressor(Protocol):
    """Anything the page store can use to compress pages."""

    name: str

    def compress(self, data: bytes) -> bytes:
        """Compress one block."""
        ...

    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress` exactly."""
        ...


class NullCompressor:
    """Identity compressor — the paper's "Original" configuration."""

    name = "none"

    def compress(self, data: bytes) -> bytes:
        """Compress one block."""
        return data

    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress` exactly."""
        return payload


class ZlibCompressor:
    """zlib-backed block compressor (DEFLATE), for speed-sensitive runs.

    The experiments use the from-scratch Snappy implementation for
    fidelity; this stdlib-backed alternative exists for users who want a
    faster block compressor in large simulations.
    """

    name = "zlib"

    def __init__(self, level: int = 1) -> None:
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be in [0, 9], got {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        """Compress one block."""
        return zlib.compress(data, self.level)

    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress` exactly."""
        return zlib.decompress(payload)


def make_block_compressor(name: str) -> BlockCompressor:
    """Factory: ``'none'``, ``'snappy'``, or ``'zlib'``."""
    if name == "none":
        return NullCompressor()
    if name == "snappy":
        from repro.compression.snappy import SnappyCompressor

        return SnappyCompressor()
    if name == "zlib":
        return ZlibCompressor()
    raise ValueError(f"unknown block compressor {name!r}")
