"""Block-level compressors (the paper's Snappy comparator and friends).

Block compression is what operational DBMSs already do (MongoDB's
WiredTiger uses Snappy); Fig. 1/10 show it is *complementary* to dedup —
applying it to deduped pages multiplies the ratio.
"""

from repro.compression.block import BlockCompressor, NullCompressor, ZlibCompressor
from repro.compression.snappy import SnappyCompressor, snappy_compress, snappy_decompress

__all__ = [
    "BlockCompressor",
    "NullCompressor",
    "ZlibCompressor",
    "SnappyCompressor",
    "snappy_compress",
    "snappy_decompress",
]
