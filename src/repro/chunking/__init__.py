"""Record chunking: content-defined (normalized gear) and fixed-size.

The content-defined chunker has two lanes producing byte-identical
boundaries: a numpy-vectorized bulk sweep (the hot path) and a scalar
byte-at-a-time oracle (:mod:`repro.chunking.scalar`) kept for
differential testing.
"""

from repro.chunking.cdc import (
    CHUNKER_IMPLS,
    Chunk,
    ContentDefinedChunker,
    normalized_masks,
)
from repro.chunking.fixed import FixedSizeChunker

__all__ = [
    "CHUNKER_IMPLS",
    "Chunk",
    "ContentDefinedChunker",
    "FixedSizeChunker",
    "normalized_masks",
]
