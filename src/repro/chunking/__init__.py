"""Record chunking: content-defined (Rabin) and fixed-size strategies."""

from repro.chunking.cdc import Chunk, ContentDefinedChunker
from repro.chunking.fixed import FixedSizeChunker

__all__ = ["Chunk", "ContentDefinedChunker", "FixedSizeChunker"]
