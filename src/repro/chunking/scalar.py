"""Scalar CDC lane: the byte-at-a-time differential-testing oracle.

This module is the *reference* implementation of normalized gear-hash
chunking. The vectorized lane in :mod:`repro.chunking.cdc` must produce
byte-identical boundaries on every input; the differential fuzz suite
(``tests/chunking/test_differential.py``) enforces that, and
``tools/check_api_boundary.py`` freezes this module's public surface to
exactly :func:`scalar_boundaries` so the oracle cannot silently grow
behaviour the fuzz suite does not cross-check.

The cut rule (shared with the vectorized lane, re-derived independently
here on purpose):

* a chunk never ends before ``min_size`` bytes — the scan *skips ahead*
  to the first candidate position, rolling only the 64 warm-up bytes the
  gear hash needs (see :data:`repro.hashing.gear.WINDOW`);
* between ``min_size`` and ``avg_size`` a boundary needs the hash's low
  ``log2(avg_size) + 2`` bits to be zero (the *strict* mask — cuts here
  are rarer than 1-in-avg, tightening the left tail);
* past ``avg_size`` the requirement drops to ``log2(avg_size) - 2`` low
  zero bits (the *loose* mask — overdue chunks cut quickly, tightening
  the right tail). This is FastCDC-style normalized chunking;
* at ``max_size`` the cut is forced. A hash match landing exactly on the
  forced position emits one boundary, not two.
"""

from __future__ import annotations

from repro.hashing.gear import GEAR, WINDOW

_MASK64 = (1 << 64) - 1


def scalar_boundaries(
    data: bytes,
    min_size: int,
    avg_size: int,
    max_size: int,
    table: tuple[int, ...] = GEAR,
) -> tuple[list[int], int]:
    """Chunk end offsets of ``data`` under normalized gear-hash chunking.

    Args:
        data: the record content.
        min_size / avg_size / max_size: chunk-size bounds; ``avg_size``
            must be a power of two ``>= 8`` (the masks take ``log2`` of
            it), with ``0 < min_size <= avg_size <= max_size``.
        table: 256-entry gear table (all lanes must agree on it).

    Returns:
        ``(boundaries, bytes_hashed)``: ascending cut offsets whose final
        element is ``len(data)`` (empty for empty input), and how many
        bytes the scan actually pushed through the hash — the skip-ahead
        savings are ``len(data) - bytes_hashed`` when positive.
    """
    bits = avg_size.bit_length() - 1
    strict_mask = (1 << min(bits + 2, 63)) - 1
    loose_mask = (1 << max(bits - 2, 1)) - 1

    n = len(data)
    cuts: list[int] = []
    start = 0
    hashed = 0
    while n - start > min_size:
        hi = min(start + max_size, n)
        normal = start + avg_size
        first = start + min_size
        # Skip ahead: positions below ``first`` can never cut, and the
        # hash only needs WINDOW bytes of warm-up before the first
        # candidate. Restarting from zero is exact — older contributions
        # would have shifted out of the 64-bit accumulator anyway.
        scan_from = max(0, first - WINDOW)
        value = 0
        cut = hi
        position = scan_from
        while position < hi:
            value = ((value << 1) + table[data[position]]) & _MASK64
            position += 1
            if position < first:
                continue
            mask = strict_mask if position <= normal else loose_mask
            if value & mask == 0:
                cut = position
                break
        hashed += position - scan_from
        cuts.append(cut)
        start = cut
    if start < n:
        cuts.append(n)
    return cuts, hashed
