"""Fixed-size chunking — the naive baseline to content-defined chunking.

Used in tests and ablations to demonstrate the boundary-shift problem that
motivates Rabin chunking: one inserted byte re-aligns every later chunk.
"""

from __future__ import annotations

from repro.chunking.cdc import Chunk


class FixedSizeChunker:
    """Split records into fixed ``size``-byte chunks (last one may be short)."""

    def __init__(self, size: int = 4096) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size

    def boundaries(self, data: bytes) -> list[int]:
        """Chunk end offsets, ascending, ending at ``len(data)``."""
        n = len(data)
        cuts = list(range(self.size, n, self.size))
        if n:
            cuts.append(n)
        return cuts

    def chunks(self, data: bytes) -> list[Chunk]:
        """Split ``data``; concatenating the chunks restores ``data``."""
        pieces = []
        start = 0
        for end in self.boundaries(data):
            pieces.append(Chunk(start, end, data[start:end]))
            start = end
        return pieces
