"""Content-defined chunking with Rabin fingerprints (§3.1.1).

A chunk boundary is declared after any byte where the low ``n`` bits of the
window's Rabin hash match a fixed pattern; ``n`` bits yields an average
chunk size of ``2^n`` bytes. Min/max clamps bound the tail of the size
distribution, as in every production CDC system.

The boundary scan itself is vectorized (one :func:`rolling_rabin` pass plus
``np.nonzero``); only the sparse boundary candidates are visited in Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.rabin import DEFAULT_PRIME, DEFAULT_WINDOW, rolling_rabin


@dataclass(frozen=True)
class Chunk:
    """One chunk of a record: ``data == record[start:end]``."""

    start: int
    end: int
    data: bytes

    def __len__(self) -> int:
        return self.end - self.start


class ContentDefinedChunker:
    """Rabin-fingerprint chunker with a target average chunk size.

    Args:
        avg_size: target average chunk size in bytes; must be a power of two
            (the boundary test masks ``log2(avg_size)`` low bits).
        min_size: boundaries closer than this to the previous one are
            suppressed. Defaults to ``avg_size // 4``.
        max_size: a boundary is forced at this length. Defaults to
            ``avg_size * 4``.
        window: rolling-hash window width in bytes.
    """

    def __init__(
        self,
        avg_size: int = 1024,
        min_size: int | None = None,
        max_size: int | None = None,
        window: int = DEFAULT_WINDOW,
        prime: int = DEFAULT_PRIME,
    ) -> None:
        if avg_size < 2 or avg_size & (avg_size - 1):
            raise ValueError(f"avg_size must be a power of two >= 2, got {avg_size}")
        self.avg_size = avg_size
        self.min_size = avg_size // 4 if min_size is None else min_size
        self.max_size = avg_size * 4 if max_size is None else max_size
        if not 0 < self.min_size <= avg_size <= self.max_size:
            raise ValueError(
                f"need 0 < min_size <= avg_size <= max_size, got "
                f"{self.min_size}/{avg_size}/{self.max_size}"
            )
        self.window = min(window, self.min_size)
        self.prime = prime
        self._mask = np.uint64(avg_size - 1)
        # Any fixed pattern works; avg_size-1 makes the all-ones residue the
        # boundary marker, which behaves well for low-entropy input too.
        self._magic = np.uint64(avg_size - 1)

    def boundaries(self, data: bytes) -> list[int]:
        """Return chunk end offsets (ascending, final element ``len(data)``)."""
        n = len(data)
        if n == 0:
            return []
        hashes = rolling_rabin(data, self.window, self.prime)
        # hashes[i] covers data[i:i+window]; a match ends a chunk after
        # byte i+window-1, i.e. at cut position i+window.
        candidates = np.nonzero((hashes & self._mask) == self._magic)[0] + self.window
        return self._clamp(candidates.tolist(), n)

    def boundaries_many(self, datas: list[bytes]) -> list[list[int]]:
        """Chunk boundaries for a whole batch in one vectorized pass.

        Equivalent to ``[self.boundaries(d) for d in datas]`` but runs a
        *single* :func:`rolling_rabin` sweep over the concatenated batch,
        amortizing the fixed numpy dispatch cost that dominates small
        records. Correctness rests on the window hash being a function of
        the window bytes alone: position ``i`` of record ``r`` (with batch
        offset ``o``) hashes ``concat[o+i : o+i+window] ==
        data[i : i+window]`` for every in-record position
        ``i <= len(data) - window``, which is exactly the candidate range
        the per-record path inspects.
        """
        if not datas:
            return []
        concatenated = b"".join(datas)
        if len(concatenated) < self.window:
            # Too short for even one window anywhere: no hash candidates;
            # every record is clamp-chunked only.
            return [self._clamp([], len(data)) for data in datas]
        hashes = rolling_rabin(concatenated, self.window, self.prime)
        marks = (hashes & self._mask) == self._magic
        results: list[list[int]] = []
        offset = 0
        for data in datas:
            n = len(data)
            count = n - self.window + 1
            if n == 0:
                results.append([])
            elif count <= 0:
                results.append(self._clamp([], n))
            else:
                candidates = (
                    np.nonzero(marks[offset : offset + count])[0] + self.window
                )
                results.append(self._clamp(candidates.tolist(), n))
            offset += n
        return results

    def _clamp(self, candidates: list[int], n: int) -> list[int]:
        """Apply min/max size clamps to raw boundary candidates."""
        cuts: list[int] = []
        previous = 0
        for cut in candidates:
            if cut - previous < self.min_size:
                continue
            while cut - previous > self.max_size:
                previous += self.max_size
                cuts.append(previous)
            if cut - previous >= self.min_size:
                cuts.append(cut)
                previous = cut
        while n - previous > self.max_size:
            previous += self.max_size
            cuts.append(previous)
        if previous < n:
            cuts.append(n)
        return cuts

    def chunks(self, data: bytes) -> list[Chunk]:
        """Split ``data`` into chunks; concatenating them restores ``data``."""
        pieces = []
        start = 0
        for end in self.boundaries(data):
            pieces.append(Chunk(start, end, data[start:end]))
            start = end
        return pieces
