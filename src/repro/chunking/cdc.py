"""Content-defined chunking with a normalized gear-hash fingerprint (§3.1.1).

A chunk boundary is declared after any byte where the low bits of the
rolling gear hash (:mod:`repro.hashing.gear`) are zero. Following
FastCDC-style *normalized chunking*, the boundary test uses a pair of
masks instead of one: positions before the target size must zero
``log2(avg_size) + 2`` low bits (cuts are rare), positions past it only
``log2(avg_size) - 2`` (cuts are quick). The pair pulls the chunk-size
distribution in toward the target from both sides, and the ``min``/
``max`` clamps still bound the tails outright — a forced cut landing
exactly on a hash match emits a single boundary.

Two lanes compute the same boundaries:

* **scalar** — byte-at-a-time with skip-ahead past min-chunk regions
  (:func:`repro.chunking.scalar.scalar_boundaries`). This is the
  differential-testing *oracle*: slow, obvious, frozen.
* **vectorized** — a numpy bulk sweep (:func:`~repro.hashing.gear.
  gear_hashes`) computes the hash at every position in six shift-add
  passes; only the sparse mask matches are visited in Python.
  :meth:`ContentDefinedChunker.boundaries_many` amortizes one padded
  sweep across a whole batch of records.

The lanes are selected by ``impl`` (surfaced as
``DedupConfig.chunker_impl``); the differential fuzz suite holds them
byte-identical on every input, so every equivalence property proved
elsewhere (batch ≡ sequential, sharded ≡ unsharded, inline ≡ hybrid)
holds regardless of lane.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.chunking.scalar import scalar_boundaries
from repro.hashing.gear import GEAR_NP, WINDOW, gear_hashes

#: Recognized ``impl`` values: the explicit lanes plus ``"auto"``, which
#: resolves to the vectorized lane (numpy is a hard dependency; the knob
#: exists so differential tests and ablations can force the oracle).
CHUNKER_IMPLS = ("scalar", "vectorized", "auto")

#: Normalization level: the strict mask carries ``log2(avg) + 2`` low
#: bits, the loose mask ``log2(avg) - 2`` (FastCDC's "NC 2" setting).
NORMALIZATION_BITS = 2

#: Zero entries inserted between records in the batched sweep, so one
#: record's gear terms cannot bleed into the next record's first
#: ``WINDOW - 1`` hash positions (a zero term contributes nothing at any
#: shift).
_BATCH_GAP = WINDOW - 1

#: Records at or above this size skip the batched padded sweep and take
#: the per-record path inside :meth:`ContentDefinedChunker.
#: boundaries_many`: the sweep amortizes fixed numpy dispatch cost,
#: which stops mattering once per-record arrays are this large, while
#: the padded copy and the cache footprint of one huge array start to
#: cost. The cutoff only routes work — both paths are byte-identical.
_BATCH_RECORD_CUTOFF = 2048


def normalized_masks(avg_size: int) -> tuple[int, int]:
    """The (strict, loose) boundary masks for a target chunk size.

    ``avg_size`` must be a power of two; the strict mask zeroes
    ``log2 + 2`` low bits (applied up to the target size), the loose mask
    ``log2 - 2`` (applied past it, clamped to at least one bit).
    """
    bits = avg_size.bit_length() - 1
    strict = (1 << min(bits + NORMALIZATION_BITS, 63)) - 1
    loose = (1 << max(bits - NORMALIZATION_BITS, 1)) - 1
    return strict, loose


@dataclass(frozen=True)
class Chunk:
    """One chunk of a record: ``data == record[start:end]``."""

    start: int
    end: int
    data: bytes

    def __len__(self) -> int:
        return self.end - self.start


class ContentDefinedChunker:
    """Normalized gear-hash chunker with a target average chunk size.

    Args:
        avg_size: target chunk size in bytes; must be a power of two
            ``>= 8`` (the normalized masks take ``log2`` of it).
        min_size: no boundary is declared closer than this to the
            previous one. Defaults to ``avg_size // 4``.
        max_size: a boundary is forced at this length. Defaults to
            ``avg_size * 4``.
        impl: ``"scalar"`` (byte-at-a-time oracle), ``"vectorized"``
            (numpy bulk sweep), or ``"auto"`` (the vectorized lane).

    Attributes:
        bytes_scanned: bytes pushed through the gear hash, keyed by lane
            (exported as ``chunker_bytes_scanned_total{impl}``).
        bytes_skipped: bytes the scalar lane's skip-ahead never touched
            (exported as ``chunker_skip_bytes_total``).
    """

    def __init__(
        self,
        avg_size: int = 1024,
        min_size: int | None = None,
        max_size: int | None = None,
        impl: str = "auto",
    ) -> None:
        if avg_size < 8 or avg_size & (avg_size - 1):
            raise ValueError(f"avg_size must be a power of two >= 8, got {avg_size}")
        if impl not in CHUNKER_IMPLS:
            raise ValueError(f"impl must be one of {CHUNKER_IMPLS}, got {impl!r}")
        self.avg_size = avg_size
        self.min_size = avg_size // 4 if min_size is None else min_size
        self.max_size = avg_size * 4 if max_size is None else max_size
        if not 0 < self.min_size <= avg_size <= self.max_size:
            raise ValueError(
                f"need 0 < min_size <= avg_size <= max_size, got "
                f"{self.min_size}/{avg_size}/{self.max_size}"
            )
        self.impl = impl
        self.strict_mask, self.loose_mask = normalized_masks(avg_size)
        self.bytes_scanned: dict[str, int] = {"scalar": 0, "vectorized": 0}
        self.bytes_skipped = 0

    @property
    def resolved_impl(self) -> str:
        """The lane actually in use (``"auto"`` resolves to vectorized)."""
        return "vectorized" if self.impl == "auto" else self.impl

    # -- boundary computation --------------------------------------------------

    def boundaries(self, data: bytes) -> list[int]:
        """Return chunk end offsets (ascending, final element ``len(data)``)."""
        if not data:
            return []
        if self.resolved_impl == "scalar":
            return self._scalar_boundaries(data)
        hashes = gear_hashes(data)
        self.bytes_scanned["vectorized"] += len(data)
        return self._cuts_from_hashes(hashes, len(data))

    def boundaries_many(self, datas: list[bytes]) -> list[list[int]]:
        """Chunk boundaries for a whole batch in one vectorized pass.

        Equivalent to ``[self.boundaries(d) for d in datas]`` — the gear
        hash is restartable, so per-record and batched sweeps agree
        exactly — but runs a *single* numpy sweep over the concatenated
        batch, amortizing the fixed dispatch cost that dominates small
        records. Records are separated by :data:`WINDOW` − 1 zero gear
        terms, which contribute nothing at any shift, so no record's
        hashes see its neighbour's bytes. Records of
        :data:`_BATCH_RECORD_CUTOFF` bytes or more gain nothing from
        amortization and are swept individually. The scalar lane chunks
        record by record (it has no per-call setup worth amortizing).
        """
        if not datas:
            return []
        if self.resolved_impl == "scalar":
            return [
                self._scalar_boundaries(data) if data else [] for data in datas
            ]
        results: list[list[int] | None] = [None] * len(datas)
        small: list[int] = []
        for pos, data in enumerate(datas):
            if not data:
                results[pos] = []
            elif len(data) >= _BATCH_RECORD_CUTOFF:
                results[pos] = self.boundaries(data)
            else:
                small.append(pos)
        if small:
            total = sum(len(datas[pos]) for pos in small)
            padded = np.zeros(total + _BATCH_GAP * len(small), dtype=np.uint64)
            offset = 0
            offsets = []
            for pos in small:
                data = datas[pos]
                offsets.append(offset)
                buf = np.frombuffer(data, dtype=np.uint8)
                padded[offset : offset + len(data)] = GEAR_NP[buf]
                offset += len(data) + _BATCH_GAP
            for shift in (1, 2, 4, 8, 16, 32):
                np.add(
                    padded[shift:],
                    padded[:-shift] << np.uint64(shift),
                    out=padded[shift:],
                )
            self.bytes_scanned["vectorized"] += total
            for pos, offset in zip(small, offsets):
                data = datas[pos]
                hashes = padded[offset : offset + len(data)]
                results[pos] = self._cuts_from_hashes(hashes, len(data))
        return results

    def _scalar_boundaries(self, data: bytes) -> list[int]:
        """Oracle lane plus its scanned/skipped byte accounting."""
        cuts, hashed = scalar_boundaries(
            data, self.min_size, self.avg_size, self.max_size
        )
        self.bytes_scanned["scalar"] += hashed
        if hashed < len(data):
            self.bytes_skipped += len(data) - hashed
        return cuts

    def _cuts_from_hashes(self, hashes: np.ndarray, n: int) -> list[int]:
        """Normalized cut scan over a record's precomputed hash array.

        Mask matches are extracted once with numpy; the per-chunk walk
        then touches only those sparse candidates via :func:`bisect_left`.
        Cut semantics mirror the scalar oracle exactly: hash index ``i``
        ends a chunk at offset ``i + 1``; candidates live in
        ``[start + min_size, hi]`` with ``hi = min(start + max_size, n)``;
        the strict mask applies through ``start + avg_size``, the loose
        mask after; no match forces the cut at ``hi`` (coinciding match
        and forced cut emit one boundary).
        """
        loose_idx = np.nonzero((hashes & np.uint64(self.loose_mask)) == 0)[0]
        # The strict mask's bits are a superset of the loose mask's, so
        # strict matches are a subset of the loose candidates.
        strict_idx = loose_idx[
            (hashes[loose_idx] & np.uint64(self.strict_mask)) == 0
        ]
        loose_pos = (loose_idx + 1).tolist()
        strict_pos = (strict_idx + 1).tolist()
        cuts: list[int] = []
        start = 0
        while n - start > self.min_size:
            hi = min(start + self.max_size, n)
            normal = start + self.avg_size
            first = start + self.min_size
            cut = hi
            i = bisect_left(strict_pos, first)
            if i < len(strict_pos) and strict_pos[i] <= min(normal, hi):
                cut = strict_pos[i]
            elif hi > normal:
                j = bisect_left(loose_pos, normal + 1)
                if j < len(loose_pos) and loose_pos[j] <= hi:
                    cut = loose_pos[j]
            cuts.append(cut)
            start = cut
        if start < n:
            cuts.append(n)
        return cuts

    def chunks(self, data: bytes) -> list[Chunk]:
        """Split ``data`` into chunks; concatenating them restores ``data``."""
        pieces = []
        start = 0
        for end in self.boundaries(data):
            pieces.append(Chunk(start, end, data[start:end]))
            start = end
        return pieces
