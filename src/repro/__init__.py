"""dbDedup: similarity-based online deduplication for databases.

A full reproduction of Xu, Pavlo, Sengupta & Ganger, "Online Deduplication
for Databases", SIGMOD 2017. The package contains the dedup engine itself
(:mod:`repro.core`), every substrate it needs — delta compression, content-
defined chunking, feature indexes, specialized caches, a document DBMS with
replication, a discrete-event cost model — plus the paper's baselines and
workload generators.

Quick start (the supported entry point is :mod:`repro.api`)::

    from repro import ClusterSpec, DedupConfig, WikipediaWorkload, open_cluster

    client = open_cluster(ClusterSpec(dedup=DedupConfig(chunk_size=1024)))
    workload = WikipediaWorkload(seed=7, target_bytes=1_000_000)
    result = client.run(workload.insert_trace())
    print(f"{result.storage_compression_ratio:.1f}x storage, "
          f"{result.network_compression_ratio:.1f}x network")
"""

from repro.api import ClusterSpec, DedupClient, open_cluster
from repro.baselines import TradDedupEngine
from repro.core import (
    AdmissionController,
    DedupConfig,
    DedupEngine,
    DedupGovernor,
    DedupStats,
    SecondaryReencoder,
)
from repro.db import Cluster, ClusterConfig, Database, RunResult
from repro.delta import (
    DeltaCompressor,
    apply_delta,
    delta_reencode,
    xdelta_compress,
)
from repro.workloads import (
    EnronWorkload,
    MessageBoardsWorkload,
    Operation,
    StackExchangeWorkload,
    WikipediaWorkload,
    make_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "DedupClient",
    "open_cluster",
    "AdmissionController",
    "DedupConfig",
    "DedupEngine",
    "DedupGovernor",
    "DedupStats",
    "SecondaryReencoder",
    "TradDedupEngine",
    "Cluster",
    "ClusterConfig",
    "Database",
    "RunResult",
    "DeltaCompressor",
    "apply_delta",
    "delta_reencode",
    "xdelta_compress",
    "Operation",
    "WikipediaWorkload",
    "EnronWorkload",
    "StackExchangeWorkload",
    "MessageBoardsWorkload",
    "make_workload",
    "__version__",
]
