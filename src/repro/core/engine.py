"""The dbDedup encoding engine (§3.1 workflow, §3.2 encodings, §4.1 flow).

For each inserted record the engine runs the four-step pipeline —
feature extraction → index lookup → source selection → delta compression —
and returns an :class:`EncodeResult` describing

* what to ship to replicas (the forward-encoded oplog payload), and
* which older records to re-encode on disk (backward/hop write-backs),

leaving the actual storage mutations to the database, which schedules them
through the lossy write-back cache. The engine only touches storage
through the narrow :class:`RecordProvider` protocol, so it is equally
testable against a dict as against the full simulated DBMS.

The workflow itself lives in :mod:`repro.core.pipeline` as an explicit
stage list; :meth:`DedupEngine.encode` drives one record through it and
:meth:`DedupEngine.encode_batch` drives a whole batch, amortizing the
vectorized sketch extraction across records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.cache.writeback import WriteBackEntry
from repro.chunking.cdc import ContentDefinedChunker
from repro.core.config import DedupConfig
from repro.core.governor import DedupGovernor
from repro.core.pipeline import (
    EncodeContext,
    PipelineObserver,
    StageStatsObserver,
    build_default_pipeline,
)
from repro.core.planner import CpuMeter, WritebackPlanner
from repro.core.selector import SourceSelector
from repro.core.size_filter import AdaptiveSizeFilter
from repro.core.stats import DedupStats
from repro.index.cuckoo import CuckooFeatureIndex
from repro.obs.registry import MetricsRegistry
from repro.sim.costs import CostModel
from repro.sketch.features import SketchExtractor
from repro.util.deprecation import positional_shim


class RecordProvider(Protocol):
    """What the engine needs from the database it serves."""

    def fetch_content(self, record_id: str) -> bytes | None:
        """Raw (decoded) content of a record, or None if unavailable.

        Implementations charge whatever I/O this costs; the engine calls
        it only on source-cache misses.
        """
        ...

    def stored_size(self, record_id: str) -> int:
        """Bytes the record currently occupies on disk (0 if unknown)."""
        ...


@dataclass(frozen=True)
class EncodeResult:
    """Everything the database needs to finish one insert.

    Attributes:
        record_id / database / raw_size: identity of the new record.
        deduped: True if a source was selected and the delta paid off.
        source_id: the selected source record (None when unique).
        forward_payload: serialized forward delta for the oplog; None for
            unique records (the oplog then carries the raw content).
        oplog_size: bytes this record contributes to replication traffic.
        writebacks: backward/hop re-encodings to schedule via the lossy
            write-back cache.
        ideal_stored_delta: net change in post-dedup storage bytes if every
            write-back is applied (new raw record minus planned savings).
        overlapped: the source was not its chain's tail (Fig. 5).
        source_was_cached: source content came from the source record cache.
        cpu_seconds: simulated CPU time the encode consumed.
    """

    record_id: str
    database: str
    raw_size: int
    deduped: bool
    source_id: str | None = None
    forward_payload: bytes | None = None
    oplog_size: int = 0
    writebacks: tuple[WriteBackEntry, ...] = ()
    ideal_stored_delta: int = 0
    overlapped: bool = False
    source_was_cached: bool = False
    cpu_seconds: float = 0.0


class DedupEngine:
    """Primary-side deduplication engine."""

    @positional_shim(
        ("config", "costs", "observers", "registry"),
        "DedupEngine",
        "positional DedupEngine(...) arguments are deprecated; pass them "
        "by keyword (engine parameters live on repro.api.ClusterSpec.dedup)",
    )
    def __init__(
        self,
        *,
        config: DedupConfig | None = None,
        costs: CostModel | None = None,
        observers: Sequence[PipelineObserver] = (),
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else DedupConfig()
        self.costs = costs if costs is not None else CostModel()
        #: Shared observability registry; the cluster passes its own so
        #: engine, storage, and replication metrics export together.
        self.registry = registry if registry is not None else MetricsRegistry()
        chunker = ContentDefinedChunker(avg_size=self.config.chunk_size)
        self.extractor = SketchExtractor(
            chunker=chunker, top_k=self.config.top_k, seed=self.config.murmur_seed
        )
        self.planner = WritebackPlanner(self.config)
        self.selector = SourceSelector(
            self.planner.source_cache, self.config.cache_reward
        )
        self.governor = DedupGovernor(
            threshold=self.config.governor_threshold,
            window=self.config.governor_window,
        )
        self.size_filter = AdaptiveSizeFilter(
            cut_percentile=self.config.size_filter_percentile,
            refresh_interval=self.config.size_filter_interval,
            enabled=self.config.size_filter_enabled,
        )
        self.stats = DedupStats(
            registry=self.registry,
            saving_sample_cap=self.config.saving_sample_cap,
            source_cache=self.planner.source_cache,
        )
        #: Per-logical-database statistics (savings samples only kept
        #: globally, to bound memory).
        self.database_stats: dict[str, DedupStats] = {}
        self._indexes: dict[str, CuckooFeatureIndex] = {}
        #: record id → global insertion sequence, used for recency
        #: tie-breaks in source selection. Pruned on record deletion and
        #: on governor-driven partition teardown.
        self._insert_seq: dict[str, int] = {}
        self._next_seq = 0
        #: database → ids registered while its partition lived, so a
        #: partition teardown can prune ``_insert_seq`` without a scan.
        self._partition_records: dict[str, set[str]] = {}
        #: The staged encode workflow (see :mod:`repro.core.pipeline`).
        self.pipeline = build_default_pipeline(
            self, observers=[StageStatsObserver(self.stats), *observers]
        )
        self._install_collectors()

    # -- convenience views -----------------------------------------------------

    @property
    def source_cache(self):
        """The planner's source record cache (shared with the selector)."""
        return self.planner.source_cache

    @property
    def chains(self):
        """The planner's chain registry."""
        return self.planner.chains

    @property
    def index_memory_bytes(self) -> int:
        """Total feature-index memory across database partitions."""
        return sum(index.memory_bytes for index in self._indexes.values())

    def stats_for(self, database: str) -> DedupStats:
        """Per-database statistics (created on first use)."""
        stats = self.database_stats.get(database)
        if stats is None:
            stats = DedupStats(
                registry=self.registry, scope=database,
                keep_saving_samples=False,
            )
            self.database_stats[database] = stats
        return stats

    def _install_collectors(self) -> None:
        """Export component-native counters through the shared registry.

        Caches and index partitions keep counting in their own plain
        attributes (zero registry cost on their hot paths); these lazy
        collectors read them out at snapshot time. Index families are
        labeled by database because partitions come and go with the
        governor.
        """
        reg = self.registry
        cache = self.planner.source_cache
        reg.counter(
            "source_cache_hits_total",
            "Source-cache lookups served from memory",
        ).collect(lambda: {(): cache.hits})
        reg.counter(
            "source_cache_misses_total",
            "Source-cache lookups that fell through to storage",
        ).collect(lambda: {(): cache.misses})
        reg.counter(
            "source_cache_evictions_total",
            "Source-cache entries evicted by the byte budget",
        ).collect(lambda: {(): cache.evictions})
        reg.gauge(
            "source_cache_used_bytes", "Bytes held by the source cache",
        ).collect(lambda: {(): cache.used_bytes})

        def index_values(attr):
            return lambda: {
                (database,): getattr(index, attr)
                for database, index in self._indexes.items()
            }

        label = ("database",)
        reg.counter(
            "cuckoo_lookups_total", "Feature-index lookups", label,
        ).collect(index_values("lookups"))
        reg.counter(
            "cuckoo_inserts_total", "Feature-index insertions", label,
        ).collect(index_values("inserts"))
        reg.counter(
            "cuckoo_displacements_total",
            "Cuckoo kicks (entries displaced during insertion)", label,
        ).collect(index_values("displacements"))
        reg.counter(
            "cuckoo_evictions_total",
            "Entries LRU-evicted from full buckets", label,
        ).collect(index_values("lru_evictions"))
        reg.gauge(
            "cuckoo_entries", "Live feature-index entries", label,
        ).collect(lambda: {
            (database,): float(len(index))
            for database, index in self._indexes.items()
        })
        reg.gauge(
            "cuckoo_memory_bytes", "Feature-index memory footprint", label,
        ).collect(lambda: {
            (database,): float(index.memory_bytes)
            for database, index in self._indexes.items()
        })
        reg.gauge(
            "governor_dedup_enabled",
            "1 while the governor keeps dedup on for the database", label,
        ).collect(lambda: {
            (database,): 0.0
            if database in self.governor.disabled_databases
            else 1.0
            for database in self.database_stats
        })
        reg.gauge(
            "size_filter_threshold_bytes",
            "Adaptive size filter cut-off per database", label,
        ).collect(lambda: {
            (database,): float(self.size_filter.threshold(database))
            for database in self.database_stats
        })

    def describe(self) -> str:
        """Operator-facing summary: per-database status + per-stage table."""
        from repro.bench.report import render_table

        rows = []
        for database in sorted(self.database_stats):
            stats = self.database_stats[database]
            rows.append(
                (
                    database,
                    stats.records_seen,
                    stats.dedup_hit_ratio,
                    stats.network_compression_ratio,
                    "on" if self.governor.is_enabled(database) else "OFF",
                    self.size_filter.threshold(database),
                )
            )
        status = render_table(
            "dbDedup engine status",
            ["database", "records", "hit ratio", "net ratio", "governor",
             "size cut-off"],
            rows,
        )
        return status + "\n\n" + self.describe_pipeline()

    def describe_pipeline(self) -> str:
        """Per-stage instrumentation table: records in/out, drops, CPU."""
        from repro.bench.report import render_table

        rows = []
        for name in self.pipeline.stage_names():
            rows.append(
                (
                    name,
                    self.stats.stage_records_in.get(name, 0),
                    self.stats.stage_records_out.get(name, 0),
                    self.stats.drops_at_stage(name),
                    f"{self.stats.stage_cpu_seconds.get(name, 0.0):.4f}",
                )
            )
        table = render_table(
            "encode pipeline stages",
            ["stage", "in", "out", "drops", "cpu s"],
            rows,
        )
        if self.stats.drop_reasons:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.stats.drop_reasons.items())
            )
            table += f"\ndrop reasons: {reasons}"
        return table

    def index_partitions(self) -> list[tuple[str, CuckooFeatureIndex]]:
        """Live ``(database, index)`` partitions (invariant checking)."""
        return list(self._indexes.items())

    def index_for(self, database: str) -> CuckooFeatureIndex:
        """The database's feature-index partition (created on demand)."""
        index = self._indexes.get(database)
        if index is None:
            index = CuckooFeatureIndex(
                num_buckets=self.config.index_buckets,
                slots_per_bucket=self.config.index_slots,
                max_candidates=self.config.max_candidates,
            )
            self._indexes[database] = index
        return index

    def rebuild_from(self, db, order: list[str] | None = None) -> int:
        """Repopulate engine state from an existing database (restart path).

        A freshly restored node (snapshot or oplog replay) has records but
        an empty feature index, source cache and chain bookkeeping — new
        inserts would find no similar records. This walks the live records
        (in ``order`` if given, else sorted by record id), re-extracts
        sketches, and re-registers everything. Returns the number of
        records indexed.

        Chains are *not* reconstructed (stored base pointers already
        encode them); future inserts simply start new chains, exactly as
        if the existing records had been their sources all along.
        """
        record_ids = order if order is not None else sorted(db.records)
        indexed = 0
        for record_id in record_ids:
            record = db.records.get(record_id)
            if record is None or record.deleted:
                continue
            content = db.fetch_content(record_id)
            if content is None:
                continue
            sketch = self.extractor.sketch(content)
            index = self.index_for(record.database)
            for feature in sketch.features:
                index.insert(feature, record_id)
            self.register_insert(record.database, record_id)
            self.source_cache.admit(record_id, content)
            indexed += 1
        return indexed

    # -- the workflow ------------------------------------------------------------

    def encode(
        self,
        database: str,
        record_id: str,
        content: bytes,
        provider: RecordProvider,
    ) -> EncodeResult:
        """Run the dedup workflow for one inserted record."""
        ctx = EncodeContext(
            database=database,
            record_id=record_id,
            content=content,
            provider=provider,
            meter=CpuMeter(self.costs),
        )
        self.pipeline.run(ctx)
        return ctx.result

    def encode_batch(
        self,
        items: Sequence[tuple[str, str, bytes]],
        provider: RecordProvider,
    ) -> list[EncodeResult]:
        """Run the dedup workflow for a batch of inserted records.

        Args:
            items: ``(database, record_id, content)`` triples in insert
                order.
            provider: storage access shared by the whole batch.

        Semantically identical to calling :meth:`encode` once per item in
        order — same :class:`EncodeResult` sequence, same statistics —
        but the sketch stage runs vectorized over the whole batch, which
        amortizes the numpy chunking overhead for small records.
        """
        contexts = [
            EncodeContext(
                database=database,
                record_id=record_id,
                content=content,
                provider=provider,
                meter=CpuMeter(self.costs),
            )
            for database, record_id, content in items
        ]
        self.pipeline.run_batch(contexts)
        return [ctx.result for ctx in contexts]

    # -- pipeline support (called by the stages) ---------------------------------

    def register_insert(self, database: str, record_id: str) -> None:
        """Record a new insert in the recency sequence and its partition."""
        self._insert_seq[record_id] = self._next_seq
        self._next_seq += 1
        self._partition_records.setdefault(database, set()).add(record_id)

    def forget_record(self, database: str, record_id: str) -> None:
        """Drop per-record bookkeeping when a record is deleted.

        Index entries for the record are pruned eagerly so the index
        never offers a deleted record as a dedup source (its content is
        gone, so the delta stage could not verify it anyway), and the
        insertion-sequence map would otherwise grow forever.
        """
        self._insert_seq.pop(record_id, None)
        partition = self._partition_records.get(database)
        if partition is not None:
            partition.discard(record_id)
        index = self._indexes.get(database)
        if index is not None:
            index.remove_record(record_id)

    def observe_governor(
        self, database: str, bytes_in: int, bytes_out: int
    ) -> None:
        """Feed one record's sizes to the governor; tear down on disable."""
        still_enabled = self.governor.observe(database, bytes_in, bytes_out)
        if not still_enabled:
            # §3.4.1: delete the disabled database's index partition, and
            # prune the per-record bookkeeping that referenced it.
            index = self._indexes.pop(database, None)
            if index is not None:
                index.clear()
            for record_id in self._partition_records.pop(database, ()):
                self._insert_seq.pop(record_id, None)
