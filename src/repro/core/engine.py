"""The dbDedup encoding engine (§3.1 workflow, §3.2 encodings, §4.1 flow).

For each inserted record the engine runs the four-step pipeline —
feature extraction → index lookup → source selection → delta compression —
and returns an :class:`EncodeResult` describing

* what to ship to replicas (the forward-encoded oplog payload), and
* which older records to re-encode on disk (backward/hop write-backs),

leaving the actual storage mutations to the database, which schedules them
through the lossy write-back cache. The engine only touches storage
through the narrow :class:`RecordProvider` protocol, so it is equally
testable against a dict as against the full simulated DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.cache.writeback import WriteBackEntry
from repro.chunking.cdc import ContentDefinedChunker
from repro.core.config import DedupConfig
from repro.core.governor import DedupGovernor
from repro.core.planner import CpuMeter, WritebackPlanner
from repro.core.selector import SourceSelector
from repro.core.size_filter import AdaptiveSizeFilter
from repro.core.stats import DedupStats
from repro.delta.instructions import serialize
from repro.index.cuckoo import CuckooFeatureIndex
from repro.sim.costs import CostModel
from repro.sketch.features import SketchExtractor


class RecordProvider(Protocol):
    """What the engine needs from the database it serves."""

    def fetch_content(self, record_id: str) -> bytes | None:
        """Raw (decoded) content of a record, or None if unavailable.

        Implementations charge whatever I/O this costs; the engine calls
        it only on source-cache misses.
        """
        ...

    def stored_size(self, record_id: str) -> int:
        """Bytes the record currently occupies on disk (0 if unknown)."""
        ...


@dataclass(frozen=True)
class EncodeResult:
    """Everything the database needs to finish one insert.

    Attributes:
        record_id / database / raw_size: identity of the new record.
        deduped: True if a source was selected and the delta paid off.
        source_id: the selected source record (None when unique).
        forward_payload: serialized forward delta for the oplog; None for
            unique records (the oplog then carries the raw content).
        oplog_size: bytes this record contributes to replication traffic.
        writebacks: backward/hop re-encodings to schedule via the lossy
            write-back cache.
        ideal_stored_delta: net change in post-dedup storage bytes if every
            write-back is applied (new raw record minus planned savings).
        overlapped: the source was not its chain's tail (Fig. 5).
        source_was_cached: source content came from the source record cache.
        cpu_seconds: simulated CPU time the encode consumed.
    """

    record_id: str
    database: str
    raw_size: int
    deduped: bool
    source_id: str | None = None
    forward_payload: bytes | None = None
    oplog_size: int = 0
    writebacks: tuple[WriteBackEntry, ...] = ()
    ideal_stored_delta: int = 0
    overlapped: bool = False
    source_was_cached: bool = False
    cpu_seconds: float = 0.0


class DedupEngine:
    """Primary-side deduplication engine."""

    def __init__(
        self,
        config: DedupConfig | None = None,
        costs: CostModel | None = None,
    ) -> None:
        self.config = config if config is not None else DedupConfig()
        self.costs = costs if costs is not None else CostModel()
        chunker = ContentDefinedChunker(avg_size=self.config.chunk_size)
        self.extractor = SketchExtractor(
            chunker=chunker, top_k=self.config.top_k, seed=self.config.murmur_seed
        )
        self.planner = WritebackPlanner(self.config)
        self.selector = SourceSelector(
            self.planner.source_cache, self.config.cache_reward
        )
        self.governor = DedupGovernor(
            threshold=self.config.governor_threshold,
            window=self.config.governor_window,
        )
        self.size_filter = AdaptiveSizeFilter(
            cut_percentile=self.config.size_filter_percentile,
            refresh_interval=self.config.size_filter_interval,
            enabled=self.config.size_filter_enabled,
        )
        self.stats = DedupStats()
        #: Per-logical-database statistics (savings samples only kept
        #: globally, to bound memory).
        self.database_stats: dict[str, DedupStats] = {}
        self._indexes: dict[str, CuckooFeatureIndex] = {}
        self._insert_seq: dict[str, int] = {}

    # -- convenience views -----------------------------------------------------

    @property
    def source_cache(self):
        """The planner's source record cache (shared with the selector)."""
        return self.planner.source_cache

    @property
    def chains(self):
        """The planner's chain registry."""
        return self.planner.chains

    @property
    def index_memory_bytes(self) -> int:
        """Total feature-index memory across database partitions."""
        return sum(index.memory_bytes for index in self._indexes.values())

    def stats_for(self, database: str) -> DedupStats:
        """Per-database statistics (created on first use)."""
        stats = self.database_stats.get(database)
        if stats is None:
            stats = DedupStats(keep_saving_samples=False)
            self.database_stats[database] = stats
        return stats

    def describe(self) -> str:
        """Operator-facing summary: one line per database."""
        from repro.bench.report import render_table

        rows = []
        for database in sorted(self.database_stats):
            stats = self.database_stats[database]
            rows.append(
                (
                    database,
                    stats.records_seen,
                    stats.dedup_hit_ratio,
                    stats.network_compression_ratio,
                    "on" if self.governor.is_enabled(database) else "OFF",
                    self.size_filter.threshold(database),
                )
            )
        return render_table(
            "dbDedup engine status",
            ["database", "records", "hit ratio", "net ratio", "governor",
             "size cut-off"],
            rows,
        )

    def index_for(self, database: str) -> CuckooFeatureIndex:
        """The database's feature-index partition (created on demand)."""
        index = self._indexes.get(database)
        if index is None:
            index = CuckooFeatureIndex(
                num_buckets=self.config.index_buckets,
                slots_per_bucket=self.config.index_slots,
                max_candidates=self.config.max_candidates,
            )
            self._indexes[database] = index
        return index

    def rebuild_from(self, db, order: list[str] | None = None) -> int:
        """Repopulate engine state from an existing database (restart path).

        A freshly restored node (snapshot or oplog replay) has records but
        an empty feature index, source cache and chain bookkeeping — new
        inserts would find no similar records. This walks the live records
        (in ``order`` if given, else sorted by record id), re-extracts
        sketches, and re-registers everything. Returns the number of
        records indexed.

        Chains are *not* reconstructed (stored base pointers already
        encode them); future inserts simply start new chains, exactly as
        if the existing records had been their sources all along.
        """
        record_ids = order if order is not None else sorted(db.records)
        indexed = 0
        for record_id in record_ids:
            record = db.records.get(record_id)
            if record is None or record.deleted:
                continue
            content = db.fetch_content(record_id)
            if content is None:
                continue
            sketch = self.extractor.sketch(content)
            index = self.index_for(record.database)
            for feature in sketch.features:
                index.insert(feature, record_id)
            self._insert_seq[record_id] = len(self._insert_seq)
            self.source_cache.admit(record_id, content)
            indexed += 1
        return indexed

    # -- the workflow ------------------------------------------------------------

    def encode(
        self,
        database: str,
        record_id: str,
        content: bytes,
        provider: RecordProvider,
    ) -> EncodeResult:
        """Run the dedup workflow for one inserted record."""
        raw_size = len(content)
        meter = CpuMeter(self.costs)

        if not self.governor.is_enabled(database):
            self.stats.records_bypassed += 1
            self.stats_for(database).records_bypassed += 1
            return self._unique_result(database, record_id, raw_size, meter)
        if not self.size_filter.should_dedup(database, raw_size):
            self.stats.records_filtered += 1
            self.stats_for(database).records_filtered += 1
            return self._unique_result(database, record_id, raw_size, meter)

        # Step 1: feature extraction (§3.1.1).
        meter.charge_chunking(raw_size)
        sketch = self.extractor.sketch(content)

        # Step 2: index lookup, registering the new record as it goes (§3.1.2).
        index = self.index_for(database)
        candidates = [
            index.lookup_and_insert(feature, record_id) for feature in sketch.features
        ]
        self._insert_seq[record_id] = len(self._insert_seq)

        # Step 3: cache-aware source selection (§3.1.3).
        selected = self.selector.select(
            candidates, recency_of=lambda rid: self._insert_seq.get(rid, -1)
        )
        if selected is None or selected.record_id == record_id:
            return self._finish_unique(database, record_id, content, meter)

        source_content = self.planner.fetch(selected.record_id, provider)
        if source_content is None:
            return self._finish_unique(database, record_id, content, meter)

        # Step 4: delta compression, forward direction first (§3.2.1).
        meter.charge_delta(len(source_content) + raw_size)
        forward = self.planner.compressor.compress(source_content, content)
        forward_payload = serialize(forward)
        if len(forward_payload) >= raw_size * self.config.min_savings_ratio:
            # Not enough savings to justify a chain edge.
            return self._finish_unique(database, record_id, content, meter)

        writebacks, overlapped = self.planner.plan(
            record_id, selected.record_id, content, source_content, forward,
            provider, meter,
        )
        if overlapped:
            self.stats.overlapped_encodings += 1
        self.stats.writebacks_planned += len(writebacks)

        oplog_size = len(forward_payload)
        planned_savings = sum(entry.space_saving for entry in writebacks)
        ideal_delta = (
            raw_size
            if self.config.encoding == "forward"
            else raw_size - planned_savings
        )
        self.stats.record_insert(raw_size, oplog_size, ideal_delta, deduped=True)
        self.stats_for(database).record_insert(
            raw_size, oplog_size, ideal_delta, deduped=True
        )
        if selected.was_cached:
            self.stats.source_cache_hits += 1
        else:
            self.stats.source_cache_misses += 1
        self._observe_governor(database, raw_size, oplog_size)
        return EncodeResult(
            record_id=record_id,
            database=database,
            raw_size=raw_size,
            deduped=True,
            source_id=selected.record_id,
            forward_payload=forward_payload,
            oplog_size=oplog_size,
            writebacks=tuple(writebacks),
            ideal_stored_delta=ideal_delta,
            overlapped=overlapped,
            source_was_cached=selected.was_cached,
            cpu_seconds=meter.seconds,
        )

    # -- internals -------------------------------------------------------------

    def _finish_unique(
        self, database: str, record_id: str, content: bytes, meter: CpuMeter
    ) -> EncodeResult:
        """Record went through the pipeline but stores unencoded.

        §3.3.1: "When no similar source is found, dbDedup simply adds the
        new record to the cache" — it may become tomorrow's source.
        """
        self.source_cache.admit(record_id, content)
        self._observe_governor(database, len(content), len(content))
        return self._unique_result(database, record_id, len(content), meter)

    def _unique_result(
        self, database: str, record_id: str, raw_size: int, meter: CpuMeter
    ) -> EncodeResult:
        self.stats.record_insert(raw_size, raw_size, raw_size, deduped=False)
        self.stats_for(database).record_insert(
            raw_size, raw_size, raw_size, deduped=False
        )
        return EncodeResult(
            record_id=record_id,
            database=database,
            raw_size=raw_size,
            deduped=False,
            oplog_size=raw_size,
            ideal_stored_delta=raw_size,
            cpu_seconds=meter.seconds,
        )

    def _observe_governor(self, database: str, bytes_in: int, bytes_out: int) -> None:
        still_enabled = self.governor.observe(database, bytes_in, bytes_out)
        if not still_enabled and database in self._indexes:
            # §3.4.1: delete the disabled database's index partition.
            self._indexes[database].clear()
            del self._indexes[database]
