"""The dbDedup encoding engine (§3.1 workflow, §3.2 encodings, §4.1 flow).

For each inserted record the engine runs the four-step pipeline —
feature extraction → index lookup → source selection → delta compression —
and returns an :class:`EncodeResult` describing

* what to ship to replicas (the forward-encoded oplog payload), and
* which older records to re-encode on disk (backward/hop write-backs),

leaving the actual storage mutations to the database, which schedules them
through the lossy write-back cache. The engine only touches storage
through the narrow :class:`RecordProvider` protocol, so it is equally
testable against a dict as against the full simulated DBMS.

The workflow itself lives in :mod:`repro.core.pipeline` as an explicit
stage list; :meth:`DedupEngine.encode` drives one record through it and
:meth:`DedupEngine.encode_batch` drives a whole batch, amortizing the
vectorized sketch extraction across records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Protocol, Sequence

from repro.cache.writeback import WriteBackEntry
from repro.chunking.cdc import ContentDefinedChunker
from repro.core.admission import (
    DECISION_DEFER,
    AdmissionController,
)
from repro.core.audit import AuditTrail
from repro.core.config import DedupConfig
from repro.core.pipeline import (
    EncodeContext,
    PipelineObserver,
    StageStatsObserver,
    build_default_pipeline,
)
from repro.core.planner import CpuMeter, WritebackPlanner
from repro.core.selector import SourceSelector
from repro.core.size_filter import AdaptiveSizeFilter
from repro.core.stats import DedupStats
from repro.index.tiered import FeatureIndex, build_index
from repro.obs.registry import MetricsRegistry, slo_events_family
from repro.sim.costs import CostModel
from repro.sketch.features import SketchExtractor
from repro.util.deprecation import positional_shim


class RecordProvider(Protocol):
    """What the engine needs from the database it serves."""

    def fetch_content(self, record_id: str) -> bytes | None:
        """Raw (decoded) content of a record, or None if unavailable.

        Implementations charge whatever I/O this costs; the engine calls
        it only on source-cache misses.
        """
        ...

    def stored_size(self, record_id: str) -> int:
        """Bytes the record currently occupies on disk (0 if unknown)."""
        ...


@dataclass(frozen=True)
class EncodeResult:
    """Everything the database needs to finish one insert.

    Attributes:
        record_id / database / raw_size: identity of the new record.
        deduped: True if a source was selected and the delta paid off.
        source_id: the selected source record (None when unique).
        forward_payload: serialized forward delta for the oplog; None for
            unique records (the oplog then carries the raw content).
        oplog_size: bytes this record contributes to replication traffic.
        writebacks: backward/hop re-encodings to schedule via the lossy
            write-back cache.
        ideal_stored_delta: net change in post-dedup storage bytes if every
            write-back is applied (new raw record minus planned savings).
        overlapped: the source was not its chain's tail (Fig. 5).
        source_was_cached: source content came from the source record cache.
        cpu_seconds: simulated CPU time the encode consumed.
        deferred: the record was parked for an out-of-line dedup pass
            instead of running the pipeline — store raw, oplog raw; its
            statistics are counted once, when it is later drained.
        drained: results of deferred records the engine pushed through
            the pipeline as part of producing *this* result (same-stream
            order preservation, or queue-bound backpressure). The caller
            must process their write-backs and CPU like any other encode;
            they produce no oplog entries (their raw payload already
            shipped at insert time).
    """

    record_id: str
    database: str
    raw_size: int
    deduped: bool
    source_id: str | None = None
    forward_payload: bytes | None = None
    oplog_size: int = 0
    writebacks: tuple[WriteBackEntry, ...] = ()
    ideal_stored_delta: int = 0
    overlapped: bool = False
    source_was_cached: bool = False
    cpu_seconds: float = 0.0
    deferred: bool = False
    drained: tuple["EncodeResult", ...] = ()


class DedupEngine:
    """Primary-side deduplication engine."""

    @positional_shim(
        ("config", "costs", "observers", "registry"),
        "DedupEngine",
        "positional DedupEngine(...) arguments are deprecated; pass them "
        "by keyword (engine parameters live on repro.api.ClusterSpec.dedup)",
    )
    def __init__(
        self,
        *,
        config: DedupConfig | None = None,
        costs: CostModel | None = None,
        observers: Sequence[PipelineObserver] = (),
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else DedupConfig()
        self.costs = costs if costs is not None else CostModel()
        #: Shared observability registry; the cluster passes its own so
        #: engine, storage, and replication metrics export together.
        self.registry = registry if registry is not None else MetricsRegistry()
        chunker = ContentDefinedChunker(
            avg_size=self.config.chunk_size, impl=self.config.chunker_impl
        )
        self.extractor = SketchExtractor(
            chunker=chunker, top_k=self.config.top_k, seed=self.config.murmur_seed
        )
        self.planner = WritebackPlanner(self.config)
        self.selector = SourceSelector(
            self.planner.source_cache, self.config.cache_reward
        )
        self.admission = AdmissionController(
            mode=self.config.admission_mode,
            threshold=self.config.governor_threshold,
            window=self.config.governor_window,
            inline_yield_threshold=self.config.admission_inline_threshold,
            bypass_yield_threshold=self.config.admission_bypass_threshold,
            bypass_patience=self.config.admission_bypass_patience,
            locality_weight=self.config.admission_locality_weight,
            locality_depth=self.config.admission_locality_depth,
            max_deferred_records=self.config.admission_queue_records,
        )
        #: CPU split the admission experiment reports: pipeline work done
        #: synchronously with client inserts vs. during deferred drains.
        self.inline_cpu_seconds = 0.0
        self.outofline_cpu_seconds = 0.0
        self.size_filter = AdaptiveSizeFilter(
            cut_percentile=self.config.size_filter_percentile,
            refresh_interval=self.config.size_filter_interval,
            enabled=self.config.size_filter_enabled,
        )
        self.stats = DedupStats(
            registry=self.registry,
            saving_sample_cap=self.config.saving_sample_cap,
            source_cache=self.planner.source_cache,
        )
        #: Per-record dedup decision log, fed by the accounting stage in
        #: lockstep with ``stats`` so the audit reconciliation identity
        #: holds by construction. Rebuilt from the oplog after a
        #: crash/failover (see ``PrimaryNode.restart``/``from_secondary``).
        self.audit = AuditTrail(registry=self.registry)
        #: First-class SLO events (shared family; the cluster feeds
        #: ``failover_stall`` into the same one). Children are cached so
        #: the per-insert cost is one dict hit plus a float add.
        self._slo_events = slo_events_family(self.registry)
        self._slo_children: dict[tuple[str, str], object] = {}
        #: Per-logical-database statistics (savings samples only kept
        #: globally, to bound memory).
        self.database_stats: dict[str, DedupStats] = {}
        #: The effective index configuration (flat knobs already folded).
        self.index_spec = self.config.resolved_index()
        self._indexes: dict[str, FeatureIndex] = {}
        #: Simulated CPU spent on tier maintenance (demotions/promotions),
        #: charged as background work via :meth:`charge_index_maintenance`.
        self.index_maintenance_cpu_seconds = 0.0
        #: record id → global insertion sequence, used for recency
        #: tie-breaks in source selection. Pruned on record deletion and
        #: on governor-driven partition teardown.
        self._insert_seq: dict[str, int] = {}
        self._next_seq = 0
        #: database → ids registered while its partition lived, so a
        #: partition teardown can prune ``_insert_seq`` without a scan.
        self._partition_records: dict[str, set[str]] = {}
        #: The staged encode workflow (see :mod:`repro.core.pipeline`).
        self.pipeline = build_default_pipeline(
            self, observers=[StageStatsObserver(self.stats), *observers]
        )
        self._install_collectors()

    # -- convenience views -----------------------------------------------------

    @property
    def source_cache(self):
        """The planner's source record cache (shared with the selector)."""
        return self.planner.source_cache

    @property
    def governor(self) -> AdmissionController:
        """Legacy name for the admission controller (governor-compatible
        surface: ``is_enabled`` / ``observe`` / ``window_ratio`` /
        ``disabled_databases``)."""
        return self.admission

    @property
    def chains(self):
        """The planner's chain registry."""
        return self.planner.chains

    @property
    def index_memory_bytes(self) -> int:
        """Total feature-index memory across database partitions."""
        return sum(index.memory_bytes for index in self._indexes.values())

    def note_slo_event(self, event: str, tenant: str) -> None:
        """Bump the shared ``slo_events_total{event,tenant}`` counter."""
        key = (event, tenant)
        child = self._slo_children.get(key)
        if child is None:
            child = self._slo_events.labels(event, tenant)
            self._slo_children[key] = child
        child.inc()

    def stats_for(self, database: str) -> DedupStats:
        """Per-database statistics (created on first use)."""
        stats = self.database_stats.get(database)
        if stats is None:
            stats = DedupStats(
                registry=self.registry, scope=database,
                keep_saving_samples=False,
            )
            self.database_stats[database] = stats
        return stats

    def _install_collectors(self) -> None:
        """Export component-native counters through the shared registry.

        Caches and index partitions keep counting in their own plain
        attributes (zero registry cost on their hot paths); these lazy
        collectors read them out at snapshot time. Index families are
        labeled by database because partitions come and go with the
        governor.
        """
        reg = self.registry
        cache = self.planner.source_cache
        reg.counter(
            "source_cache_hits_total",
            "Source-cache lookups served from memory",
        ).collect(lambda: {(): cache.hits})
        reg.counter(
            "source_cache_misses_total",
            "Source-cache lookups that fell through to storage",
        ).collect(lambda: {(): cache.misses})
        reg.counter(
            "source_cache_evictions_total",
            "Source-cache entries evicted by the byte budget",
        ).collect(lambda: {(): cache.evictions})
        reg.gauge(
            "source_cache_used_bytes", "Bytes held by the source cache",
        ).collect(lambda: {(): cache.used_bytes})

        def index_values(attr):
            return lambda: {
                (database,): getattr(index, attr)
                for database, index in self._indexes.items()
            }

        label = ("database",)
        reg.counter(
            "cuckoo_lookups_total", "Feature-index lookups", label,
        ).collect(index_values("lookups"))
        reg.counter(
            "cuckoo_inserts_total", "Feature-index insertions", label,
        ).collect(index_values("inserts"))
        reg.counter(
            "cuckoo_displacements_total",
            "Cuckoo kicks (entries displaced during insertion)", label,
        ).collect(index_values("displacements"))
        reg.counter(
            "cuckoo_evictions_total",
            "Entries LRU-evicted from full buckets", label,
        ).collect(index_values("lru_evictions"))
        reg.gauge(
            "cuckoo_entries", "Live feature-index entries", label,
        ).collect(lambda: {
            (database,): float(len(index))
            for database, index in self._indexes.items()
        })
        reg.gauge(
            "cuckoo_memory_bytes", "Feature-index memory footprint", label,
        ).collect(lambda: {
            (database,): float(index.memory_bytes)
            for database, index in self._indexes.items()
        })

        # Kind-uniform index families: the cuckoo index carries the same
        # hot_hits/misses split as the tiered one, and missing tier
        # attributes read as 0 (a cuckoo index has no cold tier), so the
        # reconciliation identity hot + cold + miss == lookups holds for
        # every index kind.
        def tier_values(attr, default=0):
            return lambda: {
                (database,): float(getattr(index, attr, default))
                for database, index in self._indexes.items()
            }

        reg.counter(
            "index_lookups_total", "Feature-index lookups (all tiers)",
            label,
        ).collect(tier_values("lookups"))
        reg.counter(
            "index_hot_hits_total",
            "Lookups answered by the exact hot tier", label,
        ).collect(tier_values("hot_hits"))
        reg.counter(
            "index_cold_hits_total",
            "Lookups answered by the approximate cold tier", label,
        ).collect(tier_values("cold_hits"))
        reg.counter(
            "index_misses_total",
            "Lookups answered by neither tier", label,
        ).collect(tier_values("misses"))
        reg.counter(
            "index_cold_false_positives_total",
            "Cold-tier Bloom hits for features never demoted", label,
        ).collect(tier_values("cold_false_positives"))
        reg.counter(
            "index_demotions_total",
            "Hot-tier entries spilled to the cold tier", label,
        ).collect(tier_values("demotions"))
        reg.counter(
            "index_promotions_total",
            "Cold features promoted back into the hot tier", label,
        ).collect(tier_values("promotions"))
        tier_label = ("database", "tier")
        reg.gauge(
            "index_tier_residency",
            "Entries resident per index tier", tier_label,
        ).collect(lambda: {
            key: value
            for database, index in self._indexes.items()
            for key, value in (
                ((database, "hot"),
                 float(getattr(index, "hot_entries", len(index)))),
                ((database, "cold"),
                 float(getattr(index, "cold_records", 0))),
            )
        })
        reg.gauge(
            "index_tier_memory_bytes",
            "Charged index memory per tier", tier_label,
        ).collect(lambda: {
            key: value
            for database, index in self._indexes.items()
            for key, value in (
                ((database, "hot"),
                 float(getattr(index, "hot_bytes", index.memory_bytes))),
                ((database, "cold"),
                 float(getattr(index, "cold_bytes", 0))),
            )
        })
        reg.gauge(
            "index_bytes_per_record",
            "Index memory amortized over the partition's live records",
            label,
        ).collect(lambda: {
            (database,): index.memory_bytes
            / max(1, len(self._partition_records.get(database, ())))
            for database, index in self._indexes.items()
        })
        reg.counter(
            "index_maintenance_cpu_seconds_total",
            "Simulated CPU spent demoting/promoting index entries",
        ).collect(lambda: {(): self.index_maintenance_cpu_seconds})
        reg.gauge(
            "governor_dedup_enabled",
            "1 while admission control keeps dedup on for the database",
            label,
        ).collect(lambda: {
            (database,): 0.0
            if database in self.admission.disabled_databases
            else 1.0
            for database in self.database_stats
        })
        admission = self.admission

        def owned(family):
            # The admission families are fed exclusively by the current
            # engine. An engine rebuild (restart, promotion) must reset
            # them as one coherent group — the reconciliation identity
            # over defer decisions / drains / queue depth only holds
            # within a single engine generation, and the dead engine's
            # sparse gauge rows would otherwise leak through shadowing.
            family.clear_collectors()
            return family

        owned(reg.counter(
            "admission_decisions_total",
            "Admission decisions per stream (inline / defer / bypass)",
            ("decision", "stream"),
        )).collect(lambda: {
            key: float(count)
            for key, count in admission.decision_counts.items()
        })
        owned(reg.gauge(
            "deferred_queue_depth",
            "Records awaiting an out-of-line dedup pass", ("stream",),
        )).collect(lambda: {
            (database,): float(admission.pending(database))
            for database in admission.databases_with_pending()
        })
        owned(reg.counter(
            "outofline_dedup_records_total",
            "Deferred records drained through the dedup pipeline",
        )).collect(lambda: {(): float(admission.outofline_records_total)})
        owned(reg.counter(
            "outofline_dedup_bytes_total",
            "Raw bytes of deferred records drained through the pipeline",
        )).collect(lambda: {(): float(admission.outofline_bytes_total)})
        owned(reg.counter(
            "deferred_discarded_total",
            "Deferred records discarded (stream bypassed, or superseded "
            "by a client update/delete)",
        )).collect(lambda: {(): float(admission.deferred_discarded_total)})
        owned(reg.counter(
            "admission_inline_cpu_seconds_total",
            "Encode CPU spent synchronously with client inserts",
        )).collect(lambda: {(): self.inline_cpu_seconds})
        owned(reg.counter(
            "admission_outofline_cpu_seconds_total",
            "Encode CPU spent draining deferred records",
        )).collect(lambda: {(): self.outofline_cpu_seconds})
        chunker = self.extractor.chunker

        owned(reg.counter(
            "chunker_bytes_scanned_total",
            "Bytes pushed through the CDC gear hash, per chunker lane",
            ("impl",),
        )).collect(lambda: {
            (impl,): float(count)
            for impl, count in chunker.bytes_scanned.items()
            if count
        })
        owned(reg.counter(
            "chunker_skip_bytes_total",
            "Bytes the scalar chunker lane skipped past min-chunk regions",
        )).collect(lambda: {(): float(chunker.bytes_skipped)})
        reg.gauge(
            "size_filter_threshold_bytes",
            "Adaptive size filter cut-off per database", label,
        ).collect(lambda: {
            (database,): float(self.size_filter.threshold(database))
            for database in self.database_stats
        })

    def describe(self) -> str:
        """Operator-facing summary: per-database status + per-stage table."""
        from repro.bench.report import render_table

        rows = []
        for database in sorted(self.database_stats):
            stats = self.database_stats[database]
            rows.append(
                (
                    database,
                    stats.records_seen,
                    stats.dedup_hit_ratio,
                    stats.network_compression_ratio,
                    "on" if self.governor.is_enabled(database) else "OFF",
                    self.size_filter.threshold(database),
                )
            )
        status = render_table(
            "dbDedup engine status",
            ["database", "records", "hit ratio", "net ratio", "governor",
             "size cut-off"],
            rows,
        )
        return status + "\n\n" + self.describe_pipeline()

    def describe_pipeline(self) -> str:
        """Per-stage instrumentation table: records in/out, drops, CPU."""
        from repro.bench.report import render_table

        rows = []
        for name in self.pipeline.stage_names():
            rows.append(
                (
                    name,
                    self.stats.stage_records_in.get(name, 0),
                    self.stats.stage_records_out.get(name, 0),
                    self.stats.drops_at_stage(name),
                    f"{self.stats.stage_cpu_seconds.get(name, 0.0):.4f}",
                )
            )
        table = render_table(
            "encode pipeline stages",
            ["stage", "in", "out", "drops", "cpu s"],
            rows,
        )
        if self.stats.drop_reasons:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.stats.drop_reasons.items())
            )
            table += f"\ndrop reasons: {reasons}"
            by_stream = self.stats.drop_reasons_by_stream
            if by_stream and set(by_stream) != {"_all"}:
                for stream in sorted(by_stream):
                    reasons = ", ".join(
                        f"{reason}={count}"
                        for reason, count in sorted(by_stream[stream].items())
                    )
                    table += f"\n  drops[{stream}]: {reasons}"
        return table

    def index_partitions(self) -> list[tuple[str, FeatureIndex]]:
        """Live ``(database, index)`` partitions (invariant checking)."""
        return list(self._indexes.items())

    def index_for(self, database: str) -> FeatureIndex:
        """The database's feature-index partition (created on demand)."""
        index = self._indexes.get(database)
        if index is None:
            index = build_index(self.index_spec)
            self._indexes[database] = index
        return index

    def charge_index_maintenance(self, index, meter=None) -> float:
        """Convert an index's pending tier-maintenance bytes to CPU time.

        Demotions and promotions move entries between tiers; the bytes
        moved accumulate on the index (``drain_maintenance_bytes``, 0 for
        a plain cuckoo index) and are converted here at the cost model's
        ``cpu_index_maintain_byte_s`` rate. With a ``meter`` the charge
        rides the current encode's CPU total (and therefore the node's
        background-CPU ledger); without one it only lands on the engine's
        :attr:`index_maintenance_cpu_seconds`, which always accumulates
        the charge and is what the rebuild paths read deltas from.
        """
        drain = getattr(index, "drain_maintenance_bytes", None)
        if drain is None:
            return 0.0
        pending = drain()
        if not pending:
            return 0.0
        seconds = pending * self.costs.cpu_index_maintain_byte_s
        self.index_maintenance_cpu_seconds += seconds
        if meter is not None:
            meter.charge_index_maintenance(pending)
        return seconds

    def rebuild_from(self, db, order: list[str] | None = None) -> int:
        """Repopulate engine state from an existing database (restart path).

        A freshly restored node (snapshot or oplog replay) has records but
        an empty feature index, source cache and chain bookkeeping — new
        inserts would find no similar records. This walks the live records
        (in ``order`` if given, else sorted by record id), re-extracts
        sketches, and re-registers everything. Returns the number of
        records indexed.

        Chains are *not* reconstructed (stored base pointers already
        encode them); future inserts simply start new chains, exactly as
        if the existing records had been their sources all along.
        """
        record_ids = order if order is not None else sorted(db.records)
        indexed = 0
        for record_id in record_ids:
            record = db.records.get(record_id)
            if record is None or record.deleted:
                continue
            content = db.fetch_content(record_id)
            if content is None:
                continue
            sketch = self.extractor.sketch(content)
            index = self.index_for(record.database)
            for feature in sketch.features:
                index.insert(feature, record_id)
            self.register_insert(record.database, record_id)
            self.source_cache.admit(record_id, content)
            indexed += 1
        # Tiered rebuilds can demote while repopulating; settle the
        # maintenance bytes into the engine's CPU ledger so the caller
        # (node restart / backlog drain) can charge the delta.
        for index in self._indexes.values():
            self.charge_index_maintenance(index)
        return indexed

    # -- the workflow ------------------------------------------------------------

    def encode(
        self,
        database: str,
        record_id: str,
        content: bytes,
        provider: RecordProvider,
    ) -> EncodeResult:
        """Run the admission decision and (unless deferred) the pipeline.

        A ``defer`` decision parks the record on the admission queue and
        returns a raw, :attr:`EncodeResult.deferred` result without
        touching the pipeline or its statistics — the record is counted
        exactly once, when a later drain pushes it through. An inline
        decision first drains any queued records *of the same stream*, so
        each stream's records enter the pipeline in insert order (the
        property that makes a hybrid run byte-identical to an all-inline
        run after the queue drains).
        """
        admission = self.admission
        decision = admission.decide(database)
        admission.note_decision(database, decision)
        if decision == DECISION_DEFER:
            self.note_slo_event("admission_defer", database)
            return self._defer_record(database, record_id, content, provider)
        drained = self._drain_stream(database, provider)
        result = self._encode_inline(database, record_id, content, provider)
        if drained:
            result = replace(result, drained=tuple(drained))
        return result

    def encode_batch(
        self,
        items: Sequence[tuple[str, str, bytes]],
        provider: RecordProvider,
    ) -> list[EncodeResult]:
        """Run the dedup workflow for a batch of inserted records.

        Args:
            items: ``(database, record_id, content)`` triples in insert
                order.
            provider: storage access shared by the whole batch.

        Semantically identical to calling :meth:`encode` once per item in
        order — same :class:`EncodeResult` sequence, same statistics —
        but the sketch stage runs vectorized over the whole batch, which
        amortizes the numpy chunking overhead for small records. In
        hybrid admission mode (or with a non-empty deferred queue) the
        batch falls back to the per-record path: deferral decisions and
        same-stream drains interleave with the encodes, so the batched
        sketch pass cannot be hoisted without reordering stateful work.
        """
        if self.admission.supports_defer or self.admission.pending_total:
            return [
                self.encode(database, record_id, content, provider)
                for database, record_id, content in items
            ]
        contexts = [
            EncodeContext(
                database=database,
                record_id=record_id,
                content=content,
                provider=provider,
                meter=CpuMeter(self.costs),
            )
            for database, record_id, content in items
        ]
        for stage in self.pipeline.stages:
            stage.prepare_batch(contexts)
        results: list[EncodeResult] = []
        for ctx in contexts:
            self.admission.note_decision(
                ctx.database, self.admission.decide(ctx.database)
            )
            self.pipeline.run(ctx)
            self.inline_cpu_seconds += ctx.result.cpu_seconds
            results.append(ctx.result)
        return results

    def _run_pipeline(
        self,
        database: str,
        record_id: str,
        content: bytes,
        provider: RecordProvider,
    ) -> EncodeResult:
        ctx = EncodeContext(
            database=database,
            record_id=record_id,
            content=content,
            provider=provider,
            meter=CpuMeter(self.costs),
        )
        self.pipeline.run(ctx)
        return ctx.result

    def _encode_inline(
        self,
        database: str,
        record_id: str,
        content: bytes,
        provider: RecordProvider,
    ) -> EncodeResult:
        result = self._run_pipeline(database, record_id, content, provider)
        self.inline_cpu_seconds += result.cpu_seconds
        return result

    def _encode_outofline(
        self,
        database: str,
        record_id: str,
        content: bytes,
        provider: RecordProvider,
    ) -> EncodeResult:
        result = self._run_pipeline(database, record_id, content, provider)
        self.outofline_cpu_seconds += result.cpu_seconds
        self.admission.note_outofline(database, result.raw_size)
        return result

    def _defer_record(
        self,
        database: str,
        record_id: str,
        content: bytes,
        provider: RecordProvider,
    ) -> EncodeResult:
        """Park one record on the deferred queue; store and oplog it raw.

        Backpressure (§3.3.2's queue-length trigger, inverted): when the
        queue is at its bound, the oldest entries are forced through the
        pipeline *now* — deferred work is never dropped, because a
        dropped record would silently diverge from the all-inline run.
        """
        admission = self.admission
        drained: list[EncodeResult] = []
        while admission.pending_total >= admission.max_deferred_records:
            oldest = admission.pop_oldest()
            if oldest is None:
                break
            # The stalled party is the *inserting* stream (``database``):
            # its insert blocks while someone else's backlog force-drains.
            self.note_slo_event("backpressure_stall", database)
            drained.append(self._encode_outofline(*oldest, provider))
        admission.defer(database, record_id, content)
        raw_size = len(content)
        return EncodeResult(
            record_id=record_id,
            database=database,
            raw_size=raw_size,
            deduped=False,
            oplog_size=raw_size,
            ideal_stored_delta=raw_size,
            cpu_seconds=0.0,
            deferred=True,
            drained=tuple(drained),
        )

    def _drain_stream(
        self, database: str, provider: RecordProvider
    ) -> list[EncodeResult]:
        """Push every queued record of one stream through the pipeline.

        Runs before an inline encode of the same stream so per-stream
        pipeline order always matches insert order. Entries of a stream
        that got bypassed mid-drain are discarded by the index teardown
        in :meth:`observe_admission`, which empties the queue for us.
        """
        results: list[EncodeResult] = []
        while True:
            entry = self.admission.pop_deferred(database)
            if entry is None:
                return results
            record_id, content = entry
            results.append(
                self._encode_outofline(database, record_id, content, provider)
            )

    def drain_deferred(
        self,
        provider: RecordProvider,
        max_records: int | None = None,
    ) -> list[EncodeResult]:
        """Drain queued deferred records (globally oldest first).

        Called from the idle hooks (``PrimaryNode.on_idle`` /
        ``Cluster._idle``) and from ``Cluster.finalize``. Global-oldest
        order preserves each stream's FIFO order, which is all the
        equivalence property needs. Returns the drained results; the
        caller handles their write-backs and CPU accounting.
        """
        results: list[EncodeResult] = []
        while max_records is None or len(results) < max_records:
            oldest = self.admission.pop_oldest()
            if oldest is None:
                break
            results.append(self._encode_outofline(*oldest, provider))
        return results

    def pending_deferred(self, database: str | None = None) -> int:
        """Deferred records awaiting an out-of-line pass."""
        if database is None:
            return self.admission.pending_total
        return self.admission.pending(database)

    def invalidate_deferred(self, record_id: str) -> bool:
        """Drop a queued record superseded by a client update/delete."""
        return self.admission.invalidate(record_id)

    # -- pipeline support (called by the stages) ---------------------------------

    def register_insert(self, database: str, record_id: str) -> None:
        """Record a new insert in the recency sequence and its partition."""
        self._insert_seq[record_id] = self._next_seq
        self._next_seq += 1
        self._partition_records.setdefault(database, set()).add(record_id)

    def forget_record(self, database: str, record_id: str) -> None:
        """Drop per-record bookkeeping when a record is deleted.

        Index entries for the record are pruned eagerly so the index
        never offers a deleted record as a dedup source (its content is
        gone, so the delta stage could not verify it anyway), and the
        insertion-sequence map would otherwise grow forever.
        """
        self._insert_seq.pop(record_id, None)
        partition = self._partition_records.get(database)
        if partition is not None:
            partition.discard(record_id)
        index = self._indexes.get(database)
        if index is not None:
            index.remove_record(record_id)

    def observe_admission(
        self,
        database: str,
        bytes_in: int,
        bytes_out: int,
        features: Iterable[int] | None = None,
    ) -> None:
        """Feed one record's outcome to the yield estimator; tear down on
        a permanent-bypass transition.

        ``features`` is the record's sketch, feeding the duplicate-
        locality half of the score.
        """
        still_enabled = self.admission.observe(
            database, bytes_in, bytes_out, features=features
        )
        if not still_enabled:
            # §3.4.1: delete the disabled database's index partition, and
            # prune the per-record bookkeeping that referenced it. Queued
            # deferred records of the stream are pointless now and are
            # discarded (counted in deferred_discarded_total).
            index = self._indexes.pop(database, None)
            if index is not None:
                index.clear()
            for record_id in self._partition_records.pop(database, ()):
                self._insert_seq.pop(record_id, None)
            self.admission.discard_deferred(database)

    def observe_governor(
        self, database: str, bytes_in: int, bytes_out: int
    ) -> None:
        """Legacy name for :meth:`observe_admission` (no sketch signal)."""
        self.observe_admission(database, bytes_in, bytes_out)
