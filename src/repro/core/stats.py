"""Deduplication statistics: the numbers every figure is built from."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DedupStats:
    """Counters accumulated by the engine across all databases.

    Compression ratios are reported the paper's way: original size divided
    by reduced size, so 1.0 means "no compression".
    """

    records_seen: int = 0
    records_deduped: int = 0
    records_unique: int = 0
    records_filtered: int = 0  # skipped by the size filter
    records_bypassed: int = 0  # skipped by the governor

    bytes_in: int = 0
    #: Bytes shipped to replicas (forward-encoded or raw payloads).
    oplog_bytes_out: int = 0
    #: Bytes the storage encoding aims to reach (raw tails + backward deltas,
    #: before any write-back losses).
    ideal_storage_bytes: int = 0

    overlapped_encodings: int = 0
    writebacks_planned: int = 0

    source_cache_hits: int = 0
    source_cache_misses: int = 0

    #: Per-record space saving samples, kept for Fig. 7's weighted CDF:
    #: (raw record size, bytes saved by dedup on the forward path).
    saving_samples: list[tuple[int, int]] = field(default_factory=list)
    keep_saving_samples: bool = True

    def record_insert(
        self, raw_size: int, oplog_size: int, ideal_stored: int, deduped: bool
    ) -> None:
        """Account one processed record."""
        self.records_seen += 1
        self.bytes_in += raw_size
        self.oplog_bytes_out += oplog_size
        self.ideal_storage_bytes += ideal_stored
        if deduped:
            self.records_deduped += 1
        else:
            self.records_unique += 1
        if self.keep_saving_samples:
            self.saving_samples.append((raw_size, raw_size - oplog_size))

    @property
    def network_compression_ratio(self) -> float:
        """Raw bytes over replicated bytes (1.0 when nothing processed)."""
        return self.bytes_in / self.oplog_bytes_out if self.oplog_bytes_out else 1.0

    @property
    def ideal_storage_compression_ratio(self) -> float:
        """Raw bytes over dedup-target storage bytes (ignores WB losses)."""
        return (
            self.bytes_in / self.ideal_storage_bytes
            if self.ideal_storage_bytes
            else 1.0
        )

    @property
    def dedup_hit_ratio(self) -> float:
        """Fraction of seen records that found a usable source."""
        return self.records_deduped / self.records_seen if self.records_seen else 0.0

    @property
    def source_cache_miss_ratio(self) -> float:
        """Fraction of source retrievals that had to hit the database."""
        total = self.source_cache_hits + self.source_cache_misses
        return self.source_cache_misses / total if total else 0.0
