"""Deduplication statistics: the numbers every figure is built from."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Default bound on retained saving samples (satellite of Fig. 7): enough
#: for a statistically tight weighted CDF, small enough to stay O(1) in
#: corpus size.
DEFAULT_SAVING_SAMPLE_CAP = 100_000

#: Fixed reservoir seed — sampling must be a deterministic function of the
#: insert stream so batched and sequential execution produce identical
#: statistics (and so experiment reruns reproduce bit-for-bit).
_RESERVOIR_SEED = 0x5EED


@dataclass
class DedupStats:
    """Counters accumulated by the engine across all databases.

    Compression ratios are reported the paper's way: original size divided
    by reduced size, so 1.0 means "no compression".

    Besides the headline counters, the staged pipeline feeds per-stage
    instrumentation (see :class:`repro.core.pipeline.StageStatsObserver`):
    ``stage_records_in``/``stage_records_out`` count contexts entering and
    surviving each stage, ``stage_cpu_seconds`` accumulates the simulated
    CPU charged inside each stage, and ``drop_reasons`` tallies why
    records left the dedup path. They reconcile: for every stage,
    ``in == out + drops-at-stage``, and the terminal accounting stage sees
    exactly ``records_seen`` contexts.
    """

    records_seen: int = 0
    records_deduped: int = 0
    records_unique: int = 0
    records_filtered: int = 0  # skipped by the size filter
    records_bypassed: int = 0  # skipped by the governor

    bytes_in: int = 0
    #: Bytes shipped to replicas (forward-encoded or raw payloads).
    oplog_bytes_out: int = 0
    #: Bytes the storage encoding aims to reach (raw tails + backward deltas,
    #: before any write-back losses).
    ideal_storage_bytes: int = 0

    overlapped_encodings: int = 0
    writebacks_planned: int = 0

    source_cache_hits: int = 0
    source_cache_misses: int = 0

    #: Per-record space saving samples, kept for Fig. 7's weighted CDF:
    #: (raw record size, bytes saved by dedup on the forward path).
    #: Bounded by ``saving_sample_cap`` via reservoir sampling (Vitter's
    #: algorithm R): once full, each subsequent record replaces a random
    #: slot with probability cap/seen, so the reservoir stays a uniform
    #: sample of *all* records — which keeps both the record-size CDF and
    #: the saving-weighted CDF unbiased estimators of the full-corpus
    #: curves.
    saving_samples: list[tuple[int, int]] = field(default_factory=list)
    keep_saving_samples: bool = True
    #: Maximum retained samples; <= 0 means unbounded (not recommended).
    saving_sample_cap: int = DEFAULT_SAVING_SAMPLE_CAP
    #: How many samples were *offered* (records seen while sampling).
    saving_samples_seen: int = 0

    # -- per-stage pipeline instrumentation --
    stage_records_in: dict[str, int] = field(default_factory=dict)
    stage_records_out: dict[str, int] = field(default_factory=dict)
    stage_cpu_seconds: dict[str, float] = field(default_factory=dict)
    drop_reasons: dict[str, int] = field(default_factory=dict)

    _sample_rng: random.Random = field(
        default_factory=lambda: random.Random(_RESERVOIR_SEED),
        repr=False,
        compare=False,
    )

    def record_insert(
        self, raw_size: int, oplog_size: int, ideal_stored: int, deduped: bool
    ) -> None:
        """Account one processed record."""
        self.records_seen += 1
        self.bytes_in += raw_size
        self.oplog_bytes_out += oplog_size
        self.ideal_storage_bytes += ideal_stored
        if deduped:
            self.records_deduped += 1
        else:
            self.records_unique += 1
        if self.keep_saving_samples:
            self._offer_sample((raw_size, raw_size - oplog_size))

    def _offer_sample(self, sample: tuple[int, int]) -> None:
        """Reservoir-sample one record into ``saving_samples``."""
        self.saving_samples_seen += 1
        if self.saving_sample_cap <= 0 or (
            len(self.saving_samples) < self.saving_sample_cap
        ):
            self.saving_samples.append(sample)
            return
        slot = self._sample_rng.randrange(self.saving_samples_seen)
        if slot < self.saving_sample_cap:
            self.saving_samples[slot] = sample

    # -- pipeline instrumentation (fed by StageStatsObserver) --

    def note_stage_entry(self, stage: str) -> None:
        """Count one context entering ``stage``."""
        self.stage_records_in[stage] = self.stage_records_in.get(stage, 0) + 1

    def note_stage_exit(
        self, stage: str, cpu_seconds: float, survived: bool
    ) -> None:
        """Count one context leaving ``stage``; ``survived`` is False when
        the stage dropped it from the dedup path."""
        if survived:
            self.stage_records_out[stage] = (
                self.stage_records_out.get(stage, 0) + 1
            )
        if cpu_seconds:
            self.stage_cpu_seconds[stage] = (
                self.stage_cpu_seconds.get(stage, 0.0) + cpu_seconds
            )

    def note_drop(self, reason: str) -> None:
        """Tally one record leaving the dedup path for ``reason``."""
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1

    def drops_at_stage(self, stage: str) -> int:
        """Records dropped inside ``stage`` (in minus out)."""
        return self.stage_records_in.get(stage, 0) - self.stage_records_out.get(
            stage, 0
        )

    @property
    def network_compression_ratio(self) -> float:
        """Raw bytes over replicated bytes (1.0 when nothing processed)."""
        return self.bytes_in / self.oplog_bytes_out if self.oplog_bytes_out else 1.0

    @property
    def ideal_storage_compression_ratio(self) -> float:
        """Raw bytes over dedup-target storage bytes (ignores WB losses)."""
        return (
            self.bytes_in / self.ideal_storage_bytes
            if self.ideal_storage_bytes
            else 1.0
        )

    @property
    def dedup_hit_ratio(self) -> float:
        """Fraction of seen records that found a usable source."""
        return self.records_deduped / self.records_seen if self.records_seen else 0.0

    @property
    def source_cache_miss_ratio(self) -> float:
        """Fraction of source retrievals that had to hit the database."""
        total = self.source_cache_hits + self.source_cache_misses
        return self.source_cache_misses / total if total else 0.0
