"""Deduplication statistics: the numbers every figure is built from.

Since the observability refactor, :class:`DedupStats` is a *projection*
over a :class:`~repro.obs.registry.MetricsRegistry` rather than a bag of
plain counters. Every increment lands in a registry instrument (labeled
by ``scope`` — ``"_total"`` for the engine-wide view, the database name
for per-database views), and the legacy attributes (``records_seen``,
``bytes_in``, the per-stage dicts, …) are read-only views over those
same instruments. The paper-facing summary and the exported metrics are
therefore the same numbers by construction — they cannot drift.

Two pieces intentionally stay off the registry:

* the saving-sample reservoir (raw per-record tuples, not a counter);
* ``source_cache_hits``/``misses`` — since the cache-accounting
  unification these *delegate to the source cache itself*
  (:class:`~repro.cache.source_cache.SourceRecordCache` is the single
  source of truth; an unbound stats object reports zero, which is what
  per-database views historically showed).

Hot-path cost: one attribute access plus a float add per counter — the
registry children are resolved once in ``__init__`` and cached.
"""

from __future__ import annotations

import random

from repro.obs.registry import BYTE_BUCKETS, MetricsRegistry

#: Default bound on retained saving samples (satellite of Fig. 7): enough
#: for a statistically tight weighted CDF, small enough to stay O(1) in
#: corpus size.
DEFAULT_SAVING_SAMPLE_CAP = 100_000

#: Fixed reservoir seed — sampling must be a deterministic function of the
#: insert stream so batched and sequential execution produce identical
#: statistics (and so experiment reruns reproduce bit-for-bit).
_RESERVOIR_SEED = 0x5EED

#: Scope label of the engine-wide (cross-database) view.
ENGINE_SCOPE = "_total"

#: Power-of-two buckets for the chunks-per-record histogram — chunk
#: counts are small integers, so byte buckets would collapse them.
CHUNK_COUNT_BUCKETS: tuple[float, ...] = tuple(
    float(1 << k) for k in range(11)
)


class DedupStats:
    """Counters accumulated by the engine, viewed through one scope.

    Compression ratios are reported the paper's way: original size divided
    by reduced size, so 1.0 means "no compression".

    Besides the headline counters, the staged pipeline feeds per-stage
    instrumentation (see :class:`repro.core.pipeline.StageStatsObserver`):
    ``stage_records_in``/``stage_records_out`` count contexts entering and
    surviving each stage, ``stage_cpu_seconds`` accumulates the simulated
    CPU charged inside each stage, and ``drop_reasons`` tallies why
    records left the dedup path. They reconcile: for every stage,
    ``in == out + drops-at-stage``, and the terminal accounting stage sees
    exactly ``records_seen`` contexts.

    Args:
        registry: the instrument registry to project; a private one is
            created when omitted (standalone/test use).
        scope: label value all this view's increments carry.
        keep_saving_samples: False disables the reservoir (per-database
            views, to bound memory).
        saving_sample_cap: reservoir bound; <= 0 means unbounded.
        source_cache: when bound, ``source_cache_hits``/``misses``
            delegate to it; None reports zero.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        scope: str = ENGINE_SCOPE,
        keep_saving_samples: bool = True,
        saving_sample_cap: int = DEFAULT_SAVING_SAMPLE_CAP,
        source_cache=None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.scope = scope
        self.source_cache = source_cache
        self.keep_saving_samples = keep_saving_samples
        self.saving_sample_cap = saving_sample_cap
        #: Per-record space saving samples, kept for Fig. 7's weighted CDF:
        #: (raw record size, bytes saved by dedup on the forward path).
        #: Bounded by ``saving_sample_cap`` via reservoir sampling
        #: (Vitter's algorithm R): once full, each subsequent record
        #: replaces a random slot with probability cap/seen, so the
        #: reservoir stays a uniform sample of *all* records.
        self.saving_samples: list[tuple[int, int]] = []
        #: How many samples were *offered* (records seen while sampling).
        self.saving_samples_seen = 0
        self._sample_rng = random.Random(_RESERVOIR_SEED)

        reg = self.registry
        label = ("scope",)
        self._seen = reg.counter(
            "dedup_records_seen_total", "Records processed by the engine",
            label,
        ).labels(scope)
        self._deduped = reg.counter(
            "dedup_records_deduped_total",
            "Records stored as a forward delta", label,
        ).labels(scope)
        self._unique = reg.counter(
            "dedup_records_unique_total", "Records stored raw", label,
        ).labels(scope)
        self._filtered = reg.counter(
            "dedup_records_filtered_total",
            "Records skipped by the adaptive size filter", label,
        ).labels(scope)
        self._bypassed = reg.counter(
            "dedup_records_bypassed_total",
            "Records bypassed by the dedup governor", label,
        ).labels(scope)
        self._bytes_in = reg.counter(
            "dedup_bytes_in_total", "Raw bytes offered to the engine",
            label,
        ).labels(scope)
        self._oplog_bytes_out = reg.counter(
            "dedup_oplog_bytes_out_total",
            "Bytes shipped to replicas (deltas or raw payloads)", label,
        ).labels(scope)
        # A gauge, not a counter: one record's contribution can be
        # negative when its planned write-backs save more than the
        # record itself adds.
        self._ideal_storage_bytes = reg.gauge(
            "dedup_ideal_storage_bytes",
            "Storage bytes the encoding aims for before write-back losses",
            label,
        ).labels(scope)
        self._overlapped = reg.counter(
            "dedup_overlapped_encodings_total",
            "Chain extensions from a non-tail source (Fig. 5)", label,
        ).labels(scope)
        self._writebacks_planned = reg.counter(
            "dedup_writebacks_planned_total",
            "Backward/hop re-encodings scheduled", label,
        ).labels(scope)
        self._record_bytes = reg.histogram(
            "dedup_record_bytes", "Raw size distribution of records",
            label, buckets=BYTE_BUCKETS,
        ).labels(scope)
        self._chunks_per_record = reg.histogram(
            "dedup_chunks_per_record",
            "CDC chunks per sketched record (records that reached the "
            "sketch stage)",
            label, buckets=CHUNK_COUNT_BUCKETS,
        ).labels(scope)

        stage_labels = ("scope", "stage")
        self._stage_in = reg.counter(
            "pipeline_stage_records_in_total",
            "Contexts entering each pipeline stage", stage_labels,
        )
        self._stage_out = reg.counter(
            "pipeline_stage_records_out_total",
            "Contexts leaving each stage still on the dedup path",
            stage_labels,
        )
        self._stage_cpu = reg.counter(
            "pipeline_stage_cpu_seconds_total",
            "Simulated CPU charged inside each stage", stage_labels,
        )
        self._drops = reg.counter(
            "pipeline_drops_total",
            "Records leaving the dedup path, by stage, reason, and "
            "originating tenant/stream",
            ("scope", "stage", "reason", "stream"),
        )
        # Per-stage children resolved lazily so the projected dicts only
        # contain stages that actually saw traffic (legacy semantics).
        self._stage_in_children: dict[str, object] = {}
        self._stage_out_children: dict[str, object] = {}
        self._stage_cpu_children: dict[str, object] = {}
        self._drop_children: dict[tuple[str, str, str], object] = {}

    # -- accumulation (called by the engine/pipeline) ----------------------------

    def record_insert(
        self, raw_size: int, oplog_size: int, ideal_stored: int, deduped: bool
    ) -> None:
        """Account one processed record."""
        self._seen.inc()
        self._bytes_in.inc(raw_size)
        self._oplog_bytes_out.inc(oplog_size)
        self._ideal_storage_bytes.inc(ideal_stored)
        self._record_bytes.observe(raw_size)
        if deduped:
            self._deduped.inc()
        else:
            self._unique.inc()
        if self.keep_saving_samples:
            self._offer_sample((raw_size, raw_size - oplog_size))

    def note_bypass(self) -> None:
        """Count one record the governor bypassed."""
        self._bypassed.inc()

    def note_filtered(self) -> None:
        """Count one record the size filter skipped."""
        self._filtered.inc()

    def note_overlap(self) -> None:
        """Count one overlapped (non-tail-source) encoding."""
        self._overlapped.inc()

    def note_chunks(self, count: int) -> None:
        """Record how many CDC chunks one sketched record produced."""
        self._chunks_per_record.observe(count)

    @property
    def chunks_per_record(self):
        """The chunks-per-record histogram child (sum/count/buckets)."""
        return self._chunks_per_record

    def note_writebacks_planned(self, count: int) -> None:
        """Count ``count`` scheduled write-backs."""
        if count:
            self._writebacks_planned.inc(count)

    def _offer_sample(self, sample: tuple[int, int]) -> None:
        """Reservoir-sample one record into ``saving_samples``."""
        self.saving_samples_seen += 1
        if self.saving_sample_cap <= 0 or (
            len(self.saving_samples) < self.saving_sample_cap
        ):
            self.saving_samples.append(sample)
            return
        slot = self._sample_rng.randrange(self.saving_samples_seen)
        if slot < self.saving_sample_cap:
            self.saving_samples[slot] = sample

    # -- pipeline instrumentation (fed by StageStatsObserver) --

    def note_stage_entry(self, stage: str) -> None:
        """Count one context entering ``stage``."""
        child = self._stage_in_children.get(stage)
        if child is None:
            child = self._stage_in.labels(self.scope, stage)
            self._stage_in_children[stage] = child
        child.inc()

    def note_stage_exit(
        self, stage: str, cpu_seconds: float, survived: bool
    ) -> None:
        """Count one context leaving ``stage``; ``survived`` is False when
        the stage dropped it from the dedup path."""
        if survived:
            child = self._stage_out_children.get(stage)
            if child is None:
                child = self._stage_out.labels(self.scope, stage)
                self._stage_out_children[stage] = child
            child.inc()
        if cpu_seconds:
            child = self._stage_cpu_children.get(stage)
            if child is None:
                child = self._stage_cpu.labels(self.scope, stage)
                self._stage_cpu_children[stage] = child
            child.inc(cpu_seconds)

    def note_drop(
        self, reason: str, stage: str = "unknown", stream: str = "_all"
    ) -> None:
        """Tally one record leaving the dedup path at ``stage``.

        ``stream`` is the tenant/logical database the dropped record
        belonged to; callers that have no stream context (unit tests,
        standalone stats) leave the ``"_all"`` default.
        """
        key = (stage, reason, stream)
        child = self._drop_children.get(key)
        if child is None:
            child = self._drops.labels(self.scope, stage, reason, stream)
            self._drop_children[key] = child
        child.inc()

    # -- legacy attribute views over the registry --------------------------------

    @property
    def records_seen(self) -> int:
        """Records processed."""
        return int(self._seen.value)

    @property
    def records_deduped(self) -> int:
        """Records stored as forward deltas."""
        return int(self._deduped.value)

    @property
    def records_unique(self) -> int:
        """Records stored raw."""
        return int(self._unique.value)

    @property
    def records_filtered(self) -> int:
        """Records skipped by the size filter."""
        return int(self._filtered.value)

    @property
    def records_bypassed(self) -> int:
        """Records bypassed by the governor."""
        return int(self._bypassed.value)

    @property
    def bytes_in(self) -> int:
        """Raw bytes offered to the engine."""
        return int(self._bytes_in.value)

    @property
    def oplog_bytes_out(self) -> int:
        """Bytes shipped to replicas (forward-encoded or raw payloads)."""
        return int(self._oplog_bytes_out.value)

    @property
    def ideal_storage_bytes(self) -> int:
        """Bytes the storage encoding aims to reach (raw tails + backward
        deltas, before any write-back losses)."""
        return int(self._ideal_storage_bytes.value)

    @property
    def overlapped_encodings(self) -> int:
        """Chain extensions whose source was not its chain's tail."""
        return int(self._overlapped.value)

    @property
    def writebacks_planned(self) -> int:
        """Backward/hop re-encodings scheduled."""
        return int(self._writebacks_planned.value)

    @property
    def source_cache_hits(self) -> int:
        """Source-cache lookups served from memory (cache's own count)."""
        return self.source_cache.hits if self.source_cache is not None else 0

    @property
    def source_cache_misses(self) -> int:
        """Source-cache lookups that fell through (cache's own count)."""
        return (
            self.source_cache.misses if self.source_cache is not None else 0
        )

    def _scoped_stages(self, family, cast) -> dict:
        return {
            key[1]: cast(value)
            for key, value in family.items()
            if key[0] == self.scope
        }

    @property
    def stage_records_in(self) -> dict[str, int]:
        """Stage → contexts that entered it (this scope only)."""
        return self._scoped_stages(self._stage_in, int)

    @property
    def stage_records_out(self) -> dict[str, int]:
        """Stage → contexts that left it still on the dedup path."""
        return self._scoped_stages(self._stage_out, int)

    @property
    def stage_cpu_seconds(self) -> dict[str, float]:
        """Stage → simulated CPU seconds charged inside it."""
        return self._scoped_stages(self._stage_cpu, float)

    @property
    def drop_reasons(self) -> dict[str, int]:
        """Drop reason → records dropped for it (summed over stages)."""
        reasons: dict[str, int] = {}
        for key, value in self._drops.items():
            if key[0] != self.scope:
                continue
            reason = key[2]
            reasons[reason] = reasons.get(reason, 0) + int(value)
        return reasons

    @property
    def drop_reasons_by_stream(self) -> dict[str, dict[str, int]]:
        """Tenant/stream → {drop reason → count} (summed over stages).

        The per-stream measurement the sketch-recall roadmap item asks
        for: a stream whose revisions fork into ``no_candidate`` drops
        shows up here directly instead of being averaged away.
        """
        streams: dict[str, dict[str, int]] = {}
        for key, value in self._drops.items():
            if key[0] != self.scope:
                continue
            reason, stream = key[2], key[3]
            per_stream = streams.setdefault(stream, {})
            per_stream[reason] = per_stream.get(reason, 0) + int(value)
        return streams

    def drops_at_stage(self, stage: str) -> int:
        """Records dropped inside ``stage`` (in minus out)."""
        return self.stage_records_in.get(stage, 0) - self.stage_records_out.get(
            stage, 0
        )

    # -- derived ratios ----------------------------------------------------------

    @property
    def network_compression_ratio(self) -> float:
        """Raw bytes over replicated bytes (1.0 when nothing processed)."""
        return self.bytes_in / self.oplog_bytes_out if self.oplog_bytes_out else 1.0

    @property
    def ideal_storage_compression_ratio(self) -> float:
        """Raw bytes over dedup-target storage bytes (ignores WB losses)."""
        return (
            self.bytes_in / self.ideal_storage_bytes
            if self.ideal_storage_bytes
            else 1.0
        )

    @property
    def dedup_hit_ratio(self) -> float:
        """Fraction of seen records that found a usable source."""
        return self.records_deduped / self.records_seen if self.records_seen else 0.0

    @property
    def source_cache_miss_ratio(self) -> float:
        """Fraction of source retrievals that had to hit the database."""
        total = self.source_cache_hits + self.source_cache_misses
        return self.source_cache_misses / total if total else 0.0

    # -- summary / equality ------------------------------------------------------

    def summary(self) -> dict:
        """Every legacy counter as one plain dict (the paper-facing view).

        This is by construction the same data the registry exports —
        each entry is read straight from a registry instrument (or the
        bound source cache), which is what makes "legacy summary ==
        exported metrics" an identity rather than a test assertion.
        """
        return {
            "records_seen": self.records_seen,
            "records_deduped": self.records_deduped,
            "records_unique": self.records_unique,
            "records_filtered": self.records_filtered,
            "records_bypassed": self.records_bypassed,
            "bytes_in": self.bytes_in,
            "oplog_bytes_out": self.oplog_bytes_out,
            "ideal_storage_bytes": self.ideal_storage_bytes,
            "overlapped_encodings": self.overlapped_encodings,
            "writebacks_planned": self.writebacks_planned,
            "source_cache_hits": self.source_cache_hits,
            "source_cache_misses": self.source_cache_misses,
            "stage_records_in": self.stage_records_in,
            "stage_records_out": self.stage_records_out,
            "stage_cpu_seconds": self.stage_cpu_seconds,
            "drop_reasons": self.drop_reasons,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DedupStats):
            return NotImplemented
        return (
            self.summary() == other.summary()
            and self.saving_samples == other.saving_samples
            and self.saving_samples_seen == other.saving_samples_seen
        )

    __hash__ = None  # mutable value object

    def __repr__(self) -> str:
        return (
            f"DedupStats(scope={self.scope!r}, seen={self.records_seen}, "
            f"deduped={self.records_deduped}, unique={self.records_unique})"
        )
