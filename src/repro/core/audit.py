"""Per-record dedup audit trail: who saved what, and why.

Every record the engine processes leaves one :class:`AuditEntry` — the
selected source, the similarity score that chose it, the bytes the
forward delta saved, and the decision reason (``"deduped"`` or the
pipeline drop reason for records stored unique). The trail is the
operator-facing answer to "why is my dedup ratio what it is", queryable
through ``repro audit`` and :meth:`repro.api.DedupClient.audit_report`.

Two representations, deliberately distinct:

* the **entry list** lives on the engine and dies with the process — it
  is rebuilt best-effort from the oplog after a crash or failover
  (:meth:`AuditTrail.rebuild_from_oplog`), because the oplog already
  persists the decision that matters (``encoded`` + ``base_id`` +
  payload size);
* the **counters** (``audit_records_total``, ``audit_saved_bytes_total``,
  ``audit_raw_bytes_total``) live in the metrics registry, which spans
  engine generations, so the reconciliation identity

  ``audit_saved_bytes_total == dedup_bytes_in_total - dedup_oplog_bytes_out_total``

  holds by construction — the trail is fed at the exact point
  :meth:`~repro.core.stats.DedupStats.record_insert` is called and
  nowhere else — and keeps holding after a failover rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.registry import MetricsRegistry

#: Scope label of the engine-wide audit view (matches
#: :data:`repro.core.stats.ENGINE_SCOPE`).
AUDIT_SCOPE = "_total"

#: Reason recorded for a record stored as a forward delta.
REASON_DEDUPED = "deduped"

#: Reason recorded for rebuilt entries whose oplog row was unencoded —
#: the original drop reason is not persisted, only the outcome.
REASON_UNIQUE = "unique"


@dataclass(frozen=True)
class AuditEntry:
    """One record's dedup decision.

    Attributes:
        record_id: the inserted record.
        database: logical database (tenant/stream) it belongs to.
        reason: ``"deduped"``, a pipeline drop reason
            (:data:`repro.core.pipeline.DROP_REASONS`), or ``"unique"``
            for rebuilt entries whose drop reason the oplog no longer
            knows.
        source_id: the selected source record (None when stored unique).
        similarity: the selection score that chose the source (None when
            stored unique or rebuilt — the score is not persisted).
        raw_size: the record's raw byte size at insert.
        saved_bytes: ``raw_size`` minus the oplog payload shipped — the
            forward-path saving this record realized.
        rebuilt: True when the entry was reconstructed from the oplog
            after a crash/failover rather than observed live.
    """

    record_id: str
    database: str
    reason: str
    source_id: str | None
    similarity: float | None
    raw_size: int
    saved_bytes: int
    rebuilt: bool = False


class AuditTrail:
    """Append-only dedup decision log with registry-backed totals.

    Args:
        registry: instrument registry the ``audit_*`` counter families
            live in; a private one is created when omitted (tests).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._entries: list[AuditEntry] = []
        self._by_record: dict[tuple[str, str], AuditEntry] = {}
        self._records_family = self.registry.counter(
            "audit_records_total",
            "Audit-trail entries by decision reason",
            ("scope", "reason"),
        )
        self._saved = self.registry.counter(
            "audit_saved_bytes_total",
            "Sum of per-record forward-path savings logged by the audit "
            "trail (reconciles with dedup_bytes_in_total - "
            "dedup_oplog_bytes_out_total)",
            ("scope",),
        ).labels(AUDIT_SCOPE)
        self._raw = self.registry.counter(
            "audit_raw_bytes_total",
            "Sum of raw record bytes logged by the audit trail",
            ("scope",),
        ).labels(AUDIT_SCOPE)
        self._reason_children: dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[AuditEntry]:
        """The trail, oldest first (a live view; do not mutate)."""
        return self._entries

    # -- accumulation -------------------------------------------------------

    def record(
        self,
        *,
        record_id: str,
        database: str,
        reason: str,
        raw_size: int,
        saved_bytes: int,
        source_id: str | None = None,
        similarity: float | None = None,
    ) -> AuditEntry:
        """Log one live dedup decision and bump the ``audit_*`` counters."""
        entry = AuditEntry(
            record_id=record_id,
            database=database,
            reason=reason,
            source_id=source_id,
            similarity=similarity,
            raw_size=raw_size,
            saved_bytes=saved_bytes,
        )
        self._append(entry)
        child = self._reason_children.get(reason)
        if child is None:
            child = self._records_family.labels(AUDIT_SCOPE, reason)
            self._reason_children[reason] = child
        child.inc()
        self._saved.inc(saved_bytes)
        self._raw.inc(raw_size)
        return entry

    def rebuild_from_oplog(self, oplog_entries, records) -> int:
        """Reconstruct the entry list from persisted oplog inserts.

        Called after a crash restart or a failover promotion, when the
        engine (and with it the in-memory trail) was rebuilt from
        scratch. The oplog persists the decision outcome — ``encoded``
        plus ``base_id`` plus the shipped payload — so every insert maps
        back to an audit entry; the similarity score and the specific
        drop reason are not persisted and come back as ``None`` /
        ``"unique"``. The ``audit_*`` registry counters are *not*
        re-incremented: the registry outlives the engine generation and
        already holds the live totals, which is what keeps the
        check-metrics reconciliation identity true across failover.

        Args:
            oplog_entries: iterable of :class:`~repro.db.oplog.OplogEntry`.
            records: the store's ``records`` mapping, used to recover
                raw sizes of encoded inserts.

        Returns:
            Number of entries reconstructed.
        """
        rebuilt = 0
        for entry in oplog_entries:
            if entry.op != "insert":
                continue
            if entry.encoded:
                stored = records.get(entry.record_id)
                raw_size = (
                    stored.raw_size if stored is not None else len(entry.payload)
                )
                self._append(
                    AuditEntry(
                        record_id=entry.record_id,
                        database=entry.database,
                        reason=REASON_DEDUPED,
                        source_id=entry.base_id,
                        similarity=None,
                        raw_size=raw_size,
                        saved_bytes=raw_size - len(entry.payload),
                        rebuilt=True,
                    )
                )
            else:
                self._append(
                    AuditEntry(
                        record_id=entry.record_id,
                        database=entry.database,
                        reason=REASON_UNIQUE,
                        source_id=None,
                        similarity=None,
                        raw_size=len(entry.payload),
                        saved_bytes=0,
                        rebuilt=True,
                    )
                )
            rebuilt += 1
        return rebuilt

    def _append(self, entry: AuditEntry) -> None:
        self._entries.append(entry)
        self._by_record[(entry.database, entry.record_id)] = entry

    # -- queries ------------------------------------------------------------

    def lookup(self, database: str, record_id: str) -> AuditEntry | None:
        """The latest entry for one record (None when never audited)."""
        return self._by_record.get((database, record_id))

    def query(
        self,
        database: str | None = None,
        reason: str | None = None,
        limit: int | None = None,
    ) -> list[AuditEntry]:
        """Filtered entries, newest first."""
        selected = [
            entry
            for entry in reversed(self._entries)
            if (database is None or entry.database == database)
            and (reason is None or entry.reason == reason)
        ]
        return selected if limit is None else selected[:limit]

    @property
    def total_saved_bytes(self) -> int:
        """Sum of per-record logged savings over the current entry list."""
        return sum(entry.saved_bytes for entry in self._entries)

    @property
    def total_raw_bytes(self) -> int:
        """Sum of logged raw record sizes over the current entry list."""
        return sum(entry.raw_size for entry in self._entries)

    def reason_counts(self) -> dict[str, int]:
        """Entry counts by decision reason (current entry list)."""
        counts: dict[str, int] = {}
        for entry in self._entries:
            counts[entry.reason] = counts.get(entry.reason, 0) + 1
        return counts

    def summary(self) -> dict:
        """Operator-facing rollup for the ``repro audit`` CLI."""
        deduped = [e for e in self._entries if e.reason == REASON_DEDUPED]
        return {
            "records": len(self._entries),
            "rebuilt": sum(1 for e in self._entries if e.rebuilt),
            "reasons": self.reason_counts(),
            "raw_bytes": self.total_raw_bytes,
            "saved_bytes": self.total_saved_bytes,
            "deduped_records": len(deduped),
            "mean_similarity": (
                sum(e.similarity for e in deduped if e.similarity is not None)
                / max(1, sum(1 for e in deduped if e.similarity is not None))
            ),
        }
