"""dbDedup core: the four-step dedup workflow and its control machinery.

:class:`~repro.core.engine.DedupEngine` implements §3.1's workflow —
feature extraction, index lookup, source selection, delta compression —
plus the §3.2 encoding plans and the :mod:`~repro.core.admission`
subsystem (the §3.4.1 governor survives as its ``"governor"`` mode). The
engine is storage-
agnostic: it talks to the database through the small
:class:`~repro.core.engine.RecordProvider` protocol, which is how it plugs
into both the primary node and unit tests.
"""

from repro.core.admission import (
    ADMISSION_MODES,
    DECISION_BYPASS,
    DECISION_DEFER,
    DECISION_INLINE,
    AdmissionController,
)
from repro.core.config import DedupConfig
from repro.core.engine import DedupEngine, EncodeResult, RecordProvider
from repro.core.governor import DedupGovernor
from repro.core.reencoder import SecondaryReencoder
from repro.core.selector import SourceSelector
from repro.core.size_filter import AdaptiveSizeFilter
from repro.core.stats import DedupStats

__all__ = [
    "ADMISSION_MODES",
    "AdmissionController",
    "DECISION_BYPASS",
    "DECISION_DEFER",
    "DECISION_INLINE",
    "DedupConfig",
    "DedupEngine",
    "EncodeResult",
    "RecordProvider",
    "DedupGovernor",
    "SecondaryReencoder",
    "SourceSelector",
    "AdaptiveSizeFilter",
    "DedupStats",
]
