"""Background storage compaction — reclaiming overlapped-encoding losses.

Extension beyond the paper. Overlapped encodings (Fig. 5) orphan one raw
record per fork: the old chain tail nothing ever re-encodes. The paper
accepts the loss (< 5 % on its corpora); at smaller scale, or on fork-heavy
workloads, it is worth reclaiming. This compactor runs when the system is
idle, finds raw records that are *not* the newest of their neighbourhood,
re-runs source selection for them against the live feature index, and
schedules ordinary backward write-backs — reusing every safety mechanism
the foreground path has (lossy cache, pending base references, refcounts).

Safety: re-encoding X against S must not create a decode cycle, so any S
whose decode path passes through X is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.writeback import WriteBackEntry
from repro.core.engine import DedupEngine
from repro.db.database import Database
from repro.db.record import RecordForm
from repro.delta.instructions import serialize


@dataclass
class CompactionReport:
    """What one compaction pass accomplished."""

    candidates: int = 0
    compacted: int = 0
    no_source: int = 0
    weak_delta: int = 0
    would_cycle: int = 0
    bytes_reclaimable: int = 0


class BackgroundCompactor:
    """Idle-time re-encoder for orphaned raw records."""

    def __init__(self, engine: DedupEngine, db: Database) -> None:
        self.engine = engine
        self.db = db

    def find_candidates(self) -> list[str]:
        """Raw, live, unpinned records — potential compaction targets.

        Whether a candidate actually gets re-encoded is decided per record
        by :meth:`_plan_one`, which only accepts a *strictly newer* similar
        record as the base. That one rule covers both goals at once: the
        genuinely hot chain tails (the newest of their lineage) find no
        newer source and stay raw, while fork-orphaned old tails (Fig. 5)
        find the branch that superseded them. It also keeps every base
        pointer aimed forward in insertion time, which makes the encoding
        graph acyclic by construction.
        """
        candidates = []
        for record_id, record in self.db.records.items():
            if record.form is not RecordForm.RAW:
                continue
            if record.deleted or record.pending_updates:
                continue
            if record_id in self.db.writeback_cache:
                continue  # already on its way to being encoded
            candidates.append(record_id)
        return candidates

    def compact(self, max_records: int | None = None) -> CompactionReport:
        """Re-encode up to ``max_records`` orphans; returns a report."""
        report = CompactionReport()
        planned: dict[str, str] = {}  # this pass's tentative base pointers
        for record_id in self.find_candidates():
            if max_records is not None and report.compacted >= max_records:
                break
            report.candidates += 1
            entry = self._plan_one(record_id, report, planned)
            if entry is None:
                continue
            self.db.schedule_writebacks([entry])
            planned[entry.record_id] = entry.base_id
            report.compacted += 1
            report.bytes_reclaimable += entry.space_saving
        return report

    def _plan_one(self, record_id: str, report: CompactionReport,
                  planned: dict[str, str]) -> WriteBackEntry | None:
        record = self.db.records[record_id]
        content = self.db.fetch_content(record_id)
        if content is None:
            report.no_source += 1
            return None

        # Re-run similarity search against the live index (lookup only —
        # the record's own features are already indexed).
        index = self.engine.index_for(record.database)
        sketch = self.engine.extractor.sketch(content)
        candidates = [
            [rid for rid in index.lookup(feature) if rid != record_id]
            for feature in sketch.features
        ]
        selected = self.engine.selector.select(
            candidates,
            recency_of=lambda rid: self.engine._insert_seq.get(rid, -1),
        )
        if selected is None:
            report.no_source += 1
            return None
        sequence = self.engine._insert_seq
        if sequence.get(selected.record_id, -1) <= sequence.get(record_id, -1):
            # Only strictly newer bases: protects hot tails and keeps the
            # encoding graph pointing forward in time.
            report.no_source += 1
            return None
        if self._decodes_through(selected.record_id, record_id, planned):
            report.would_cycle += 1
            return None
        source_content = self.engine.planner.fetch(selected.record_id, self.db)
        if source_content is None:
            report.no_source += 1
            return None

        backward = self.engine.planner.compressor.compress(source_content, content)
        payload = serialize(backward)
        saving = record.stored_size - len(payload)
        if saving <= 0 or len(payload) >= len(content) * self.engine.config.min_savings_ratio:
            report.weak_delta += 1
            return None
        return WriteBackEntry(
            record_id=record_id,
            base_id=selected.record_id,
            payload=payload,
            space_saving=saving,
        )

    def _decodes_through(
        self, start_id: str, target_id: str, planned: dict[str, str]
    ) -> bool:
        """Could ``start_id``'s decode path ever pass through ``target_id``?

        Write-backs flush in an order we do not control, so between now
        and quiescence a record's base pointer may be its stored one, its
        pending (write-back cache) one, or the one planned earlier in this
        pass. The check is therefore a BFS over the *union* of all three
        edge sets: if any combination reaches ``target_id``, encoding the
        target against ``start_id`` could transiently (or permanently)
        close a cycle, and the plan is rejected.
        """
        seen: set[str] = set()
        frontier = [start_id]
        while frontier:
            cursor_id = frontier.pop()
            if cursor_id == target_id:
                return True
            if cursor_id in seen:
                continue
            seen.add(cursor_id)
            successors = set()
            planned_base = planned.get(cursor_id)
            if planned_base is not None:
                successors.add(planned_base)
            pending_base = self.db.writeback_cache.pending_base_of(cursor_id)
            if pending_base is not None:
                successors.add(pending_base)
            record = self.db.records.get(cursor_id)
            if record is not None and record.base_id is not None:
                successors.add(record.base_id)
            frontier.extend(successors)
        return False
