"""Shared write-back planning used by primary engine and secondary re-encoder.

Both ends of the replication link must derive *identical* backward/hop
write-backs from the same forward-encoded record stream (§4.1: "generates
the same backward-encoded delta ... These steps ensure that the secondary
stores the same data as the primary node"). Centralizing the logic here is
what guarantees that: both sides run this planner with the same
configuration over the same ordered stream, so their chain registries and
encodings evolve in lock-step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.source_cache import SourceRecordCache
from repro.cache.writeback import WriteBackEntry
from repro.core.config import DedupConfig
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.instructions import Delta, serialize
from repro.delta.reencode import delta_reencode
from repro.encoding.chain import ChainRegistry, ReencodeAction
from repro.encoding.policies import EncodingPolicy, make_policy
from repro.sim.costs import CostModel


@dataclass
class CpuMeter:
    """Accumulates simulated CPU seconds for one operation."""

    costs: CostModel
    seconds: float = 0.0

    def charge_chunking(self, nbytes: int) -> None:
        """Charge chunking/sketching CPU for ``nbytes``."""
        self.seconds += nbytes * self.costs.cpu_chunk_byte_s

    def charge_delta(self, nbytes: int) -> None:
        """Charge delta-compression CPU for ``nbytes``."""
        self.seconds += nbytes * self.costs.cpu_delta_byte_s

    def charge_reencode(self, nbytes: int) -> None:
        """Charge memory-speed re-encode CPU for ``nbytes``."""
        self.seconds += nbytes * self.costs.cpu_reencode_byte_s

    def charge_decode(self, nbytes: int) -> None:
        """Charge delta-decode CPU for ``nbytes``."""
        self.seconds += nbytes * self.costs.cpu_decode_byte_s

    def charge_index_maintenance(self, nbytes: int) -> None:
        """Charge tier demotion/promotion CPU for ``nbytes`` moved."""
        self.seconds += nbytes * self.costs.cpu_index_maintain_byte_s


class WritebackPlanner:
    """Chain bookkeeping + backward-delta generation for one node."""

    def __init__(self, config: DedupConfig) -> None:
        self.config = config
        self.compressor = DeltaCompressor(
            anchor_interval=config.anchor_interval, window=config.delta_window
        )
        self.source_cache = SourceRecordCache(config.source_cache_bytes)
        self.chains = ChainRegistry()
        self.policy: EncodingPolicy = make_policy(
            config.encoding if config.encoding != "forward" else "backward",
            config.hop_distance,
        )
        #: Planned re-encodings skipped because the delta would not have
        #: shrunk the stored form (``saving <= 0``). Each skip can leave
        #: a decode chain longer than the hop policy's nominal bound, so
        #: the invariant checker gates its hop-bound check on this.
        self.unprofitable_skips = 0
        #: Chain extensions from a non-tail source (Fig. 5 forks). The
        #: orphaned old tail stays raw off the hop lattice, so this also
        #: gates the hop-bound invariant.
        self.overlapped_encodings = 0

    def fetch(self, record_id: str, provider) -> bytes | None:
        """Record content via the source cache, falling back to ``provider``."""
        content = self.source_cache.get(record_id)
        if content is not None:
            return content
        content = provider.fetch_content(record_id)
        if content is not None:
            self.source_cache.admit(record_id, content)
        return content

    def plan(
        self,
        record_id: str,
        source_id: str,
        content: bytes,
        source_content: bytes,
        forward: Delta,
        provider,
        meter: CpuMeter,
    ) -> tuple[list[WriteBackEntry], bool]:
        """Extend the source's chain with the new record; emit write-backs.

        Returns ``(writebacks, overlapped)``. In ``'forward'`` encoding mode
        (network-only dedup) storage stays raw and no write-backs are
        produced, but the chain is still tracked for cache maintenance.
        """
        chain_id, position, overlapped = self.chains.extend(source_id, record_id)
        if overlapped:
            self.overlapped_encodings += 1
        if self.config.encoding == "forward":
            self._refresh_cache(source_id, record_id, content, overlapped, None)
            return [], overlapped

        if overlapped:
            # Fig. 5: only the selected source re-encodes; the orphaned old
            # tail stays raw (the accepted compression loss).
            actions = [ReencodeAction(source_id, record_id)]
        else:
            records = self.chains.records_of_chain(chain_id)
            actions = self.policy.plan_extend(records, position)

        writebacks: list[WriteBackEntry] = []
        hop = self.config.hop_distance if self.config.encoding == "hop" else None
        for action in actions:
            if action.target_id == source_id:
                # Adjacent pair: Algorithm 2, memory-speed transformation.
                meter.charge_reencode(len(source_content))
                backward = delta_reencode(source_content, forward)
            else:
                target_content = self.fetch(action.target_id, provider)
                if target_content is None:
                    continue
                meter.charge_delta(len(target_content) + len(content))
                backward = self.compressor.compress(content, target_content)
                if hop is not None:
                    self._retire_hop_base(action.target_id, position, hop)
            payload = serialize(backward)
            saving = provider.stored_size(action.target_id) - len(payload)
            if saving <= 0:
                # A delta bigger than the stored form helps nobody.
                self.unprofitable_skips += 1
                continue
            writebacks.append(
                WriteBackEntry(
                    record_id=action.target_id,
                    base_id=action.base_id,
                    payload=payload,
                    space_saving=saving,
                )
            )
        self._refresh_cache(source_id, record_id, content, overlapped, hop)
        return writebacks, overlapped

    def _refresh_cache(
        self,
        source_id: str,
        record_id: str,
        content: bytes,
        overlapped: bool,
        hop: int | None,
    ) -> None:
        """§3.3.1 cache maintenance on chain growth.

        The new record supersedes the source's cache slot — except when the
        source is a hop base, which must stay cached until its hop
        re-encoding arrives ("dbDedup additionally caches the latest hop
        bases in each hop level").
        """
        if hop is not None and not overlapped:
            try:
                _, source_position = self.chains.position_of(source_id)
            except KeyError:
                source_position = -1
            if source_position >= 0 and source_position % hop == 0:
                self.source_cache.admit(record_id, content)
                return
        self.source_cache.replace_tail(source_id, record_id, content)

    def _retire_hop_base(self, target_id: str, new_position: int, hop: int) -> None:
        """Drop a just-re-encoded hop base from the cache, unless a higher
        hop level will need it again."""
        try:
            _, target_position = self.chains.position_of(target_id)
        except KeyError:
            return
        span = new_position - target_position
        higher = span * hop
        if target_position % higher != 0:
            self.source_cache.invalidate(target_id)
