"""Per-stream admission control for the dedup pipeline (§3.4.1 generalized).

The paper's governor is a one-way kill switch: a database whose windowed
compression ratio stays under the threshold has dedup disabled forever.
That is the right call for streams that *never* dedup, but the wrong one
for bursty multi-tenant load where a stream's yield oscillates — HPDedup's
locality prioritization and hybrid inline/out-of-line designs both show
that deferring low-yield work to background passes recovers throughput
without giving up ratio.

:class:`AdmissionController` subsumes the governor. Per stream (logical
database key) it keeps an online *yield estimator* — the windowed
compression ratio plus a duplicate-locality score over recent sketches —
and answers one of three decisions per record:

* ``inline``: run the full dedup pipeline at insert time (high yield, or
  still warming up);
* ``defer``: store the record raw now and enqueue it for an out-of-line
  dedup pass, drained while the simulator is idle (§3.3.2's queue-length
  trigger) or when the queue bound forces it;
* ``bypass``: the stream is permanently low-yield — the paper's governor
  semantics, kept as the degenerate configuration.

Modes:

* ``"governor"`` (default): the paper-faithful behaviour — inline until
  the windowed ratio drops below the threshold, then permanent bypass.
  Byte-identical to the pre-refactor :class:`DedupGovernor`.
* ``"inline"``: always inline, never defer, never bypass (the estimator
  still runs for reporting).
* ``"hybrid"``: the three-way policy described above.

The controller also owns the deferred-record queue (bounded; overflow
forces a synchronous drain rather than dropping work — a dropped record
would silently diverge from the all-inline run) and the decision counters
exported as ``admission_decisions_total{decision,stream}``.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Iterable

#: Admission modes (``DedupConfig.admission_mode``).
MODE_INLINE = "inline"
MODE_HYBRID = "hybrid"
MODE_GOVERNOR = "governor"
ADMISSION_MODES = (MODE_INLINE, MODE_HYBRID, MODE_GOVERNOR)

#: Per-record decisions returned by :meth:`AdmissionController.decide`.
DECISION_INLINE = "inline"
DECISION_DEFER = "defer"
DECISION_BYPASS = "bypass"
DECISIONS = (DECISION_INLINE, DECISION_DEFER, DECISION_BYPASS)


class _LocalityWindow:
    """Bounded membership window over the last N sketches of one stream.

    A record scores a *locality hit* when its sketch shares at least one
    feature with any of the stream's ``depth`` most recent sketches —
    §3.3.1's creation-time locality observation turned into a cheap
    online signal (feature membership is kept in a counter, so both
    observe and expire are O(top_k)).
    """

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self._sketches: deque[tuple[int, ...]] = deque()
        self._features: Counter[int] = Counter()

    def observe(self, features: Iterable[int]) -> bool:
        """Fold one sketch; True if it shared a feature with the window."""
        features = tuple(features)
        hit = any(f in self._features for f in features)
        self._sketches.append(features)
        for f in features:
            self._features[f] += 1
        while len(self._sketches) > self.depth:
            for f in self._sketches.popleft():
                remaining = self._features[f] - 1
                if remaining:
                    self._features[f] = remaining
                else:
                    del self._features[f]
        return hit


@dataclass
class _StreamState:
    """One stream's current estimation window (reset every ``window``)."""

    bytes_in: int = 0
    bytes_out: int = 0
    inserts: int = 0
    disabled: bool = False
    locality_hits: int = 0
    locality_seen: int = 0
    #: Yield score of the last *completed* window; None while warming up.
    last_yield: float | None = None
    #: Consecutive completed windows under the bypass threshold.
    low_windows: int = 0


def _safe_ratio(bytes_in: int, bytes_out: int) -> float:
    """``bytes_in / bytes_out`` guarded against zero-byte windows.

    Empty or all-tombstone windows (both sides zero, or a zero
    denominator) report the neutral 1.0 rather than dividing by zero or
    leaking NaN/inf into the metrics export.
    """
    if bytes_out <= 0:
        return 1.0
    ratio = bytes_in / bytes_out
    if not math.isfinite(ratio):
        return 1.0
    return ratio


class AdmissionController:
    """Per-stream yield estimation, three-way decisions, deferred queue.

    Compatibility: exposes the old governor surface — :meth:`is_enabled`,
    :meth:`observe`, :meth:`window_ratio`, :attr:`disabled_databases`,
    :attr:`threshold`, :attr:`window` — so code written against
    ``engine.governor`` keeps working unchanged.

    Args:
        mode: one of :data:`ADMISSION_MODES`.
        threshold: minimum window compression ratio for governor-mode
            survival (§3.4.1: 1.1).
        window: inserts per estimation window.
        inline_yield_threshold: hybrid mode — yield score at or above
            which a stream dedups inline.
        bypass_yield_threshold: hybrid mode — yield score below which a
            stream is counted toward permanent bypass; ``<= 0`` disables
            bypass entirely (everything low-yield defers instead).
        bypass_patience: consecutive low windows before hybrid bypass.
        locality_weight: weight of the duplicate-locality fraction in the
            yield score (``score = ratio + weight * locality``).
        locality_depth: sketches per stream kept in the locality window.
        max_deferred_records: global bound on queued deferred records;
            at the bound the engine force-drains the oldest entry before
            enqueueing (records are never silently dropped).
    """

    def __init__(
        self,
        *,
        mode: str = MODE_GOVERNOR,
        threshold: float = 1.1,
        window: int = 100_000,
        inline_yield_threshold: float = 1.2,
        bypass_yield_threshold: float = 0.0,
        bypass_patience: int = 2,
        locality_weight: float = 0.5,
        locality_depth: int = 64,
        max_deferred_records: int = 4096,
    ) -> None:
        if mode not in ADMISSION_MODES:
            raise ValueError(
                f"mode must be one of {ADMISSION_MODES}, got {mode!r}"
            )
        if threshold < 1.0:
            raise ValueError(f"threshold must be >= 1.0, got {threshold}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if inline_yield_threshold <= 0:
            raise ValueError(
                "inline_yield_threshold must be > 0, "
                f"got {inline_yield_threshold}"
            )
        if bypass_patience < 1:
            raise ValueError(
                f"bypass_patience must be >= 1, got {bypass_patience}"
            )
        if locality_weight < 0:
            raise ValueError(
                f"locality_weight must be >= 0, got {locality_weight}"
            )
        if locality_depth < 1:
            raise ValueError(
                f"locality_depth must be >= 1, got {locality_depth}"
            )
        if max_deferred_records < 1:
            raise ValueError(
                "max_deferred_records must be >= 1, "
                f"got {max_deferred_records}"
            )
        self.mode = mode
        self.threshold = threshold
        self.window = window
        self.inline_yield_threshold = inline_yield_threshold
        self.bypass_yield_threshold = bypass_yield_threshold
        self.bypass_patience = bypass_patience
        self.locality_weight = locality_weight
        self.locality_depth = locality_depth
        self.max_deferred_records = max_deferred_records

        self._states: dict[str, _StreamState] = {}
        self._locality: dict[str, _LocalityWindow] = {}
        self.disabled_databases: set[str] = set()

        # Deferred queue: live entries keyed by record id, with per-stream
        # and global FIFO id orders. Invalidation (client update/delete,
        # bypass teardown) removes the entry; the deques skip dead ids
        # lazily on pop.
        self._entries: dict[str, tuple[str, bytes]] = {}
        self._stream_order: dict[str, deque[str]] = {}
        self._global_order: deque[str] = deque()
        self._pending_counts: dict[str, int] = {}

        #: ``(decision, stream) -> count`` for admission_decisions_total.
        self.decision_counts: dict[tuple[str, str], int] = {}
        self.deferred_enqueued_total = 0
        self.deferred_discarded_total = 0
        self.outofline_records_total = 0
        self.outofline_bytes_total = 0

    # -- decisions ---------------------------------------------------------------

    @property
    def supports_defer(self) -> bool:
        """True when this mode can return :data:`DECISION_DEFER`."""
        return self.mode == MODE_HYBRID

    def is_enabled(self, database: str) -> bool:
        """Governor-compatible view: False once the stream is bypassed."""
        return database not in self.disabled_databases

    def decide(self, database: str) -> str:
        """Three-way admission decision for one record of ``database``.

        Pure: no state is mutated, so callers may consult it freely. The
        hybrid policy scores the last *completed* window — a stream with
        no completed window yet runs inline (warm-up: the estimator needs
        pipeline outcomes to have an opinion at all).
        """
        if database in self.disabled_databases:
            return DECISION_BYPASS
        if self.mode != MODE_HYBRID:
            return DECISION_INLINE
        state = self._states.get(database)
        if state is None or state.last_yield is None:
            return DECISION_INLINE
        if state.last_yield >= self.inline_yield_threshold:
            return DECISION_INLINE
        return DECISION_DEFER

    def note_decision(self, database: str, decision: str) -> None:
        """Count one decision for ``admission_decisions_total``."""
        key = (decision, database)
        self.decision_counts[key] = self.decision_counts.get(key, 0) + 1

    # -- the yield estimator -----------------------------------------------------

    def observe(
        self,
        database: str,
        bytes_in: int,
        bytes_out: int,
        features: Iterable[int] | None = None,
    ) -> bool:
        """Fold one record's pipeline outcome into the stream's window.

        ``bytes_in`` is the raw size, ``bytes_out`` what the record cost
        after dedup (the oplog delta, or raw again when it stored unique);
        ``features`` is the record's sketch for the locality signal.

        Returns False when the stream is (or just became) permanently
        bypassed — the caller must then tear down its index partition
        (§3.4.1). A bypassed stream is never re-enabled.
        """
        state = self._states.setdefault(database, _StreamState())
        if state.disabled:
            return False
        if features is not None:
            locality = self._locality.get(database)
            if locality is None:
                locality = _LocalityWindow(self.locality_depth)
                self._locality[database] = locality
            state.locality_seen += 1
            state.locality_hits += locality.observe(features)
        state.bytes_in += bytes_in
        state.bytes_out += bytes_out
        state.inserts += 1
        if state.inserts < self.window:
            return True
        return self._evaluate_window(database, state)

    def _evaluate_window(self, database: str, state: _StreamState) -> bool:
        """Score a completed window; disable, or reset for the next one."""
        # Governor-mode exactness: the legacy ratio convention (zero
        # denominator reads as 1.0) and the strict `<` comparison.
        ratio = (
            state.bytes_in / state.bytes_out if state.bytes_out else 1.0
        )
        if not math.isfinite(ratio):
            ratio = 1.0
        if self.mode == MODE_GOVERNOR:
            if ratio < self.threshold:
                return self._disable(database, state)
        else:
            state.last_yield = ratio + self.locality_weight * (
                state.locality_hits / state.locality_seen
                if state.locality_seen
                else 0.0
            )
            if (
                self.mode == MODE_HYBRID
                and self.bypass_yield_threshold > 0
                and state.last_yield < self.bypass_yield_threshold
            ):
                state.low_windows += 1
                if state.low_windows >= self.bypass_patience:
                    return self._disable(database, state)
            else:
                state.low_windows = 0
        state.bytes_in = 0
        state.bytes_out = 0
        state.inserts = 0
        state.locality_hits = 0
        state.locality_seen = 0
        return True

    def _disable(self, database: str, state: _StreamState) -> bool:
        state.disabled = True
        self.disabled_databases.add(database)
        return False

    def window_ratio(self, database: str) -> float:
        """Current window's compression ratio (1.0 when empty).

        Guarded against zero-byte windows: never divides by zero, never
        returns NaN or inf (the value feeds directly into metrics).
        """
        state = self._states.get(database)
        if state is None:
            return 1.0
        return _safe_ratio(state.bytes_in, state.bytes_out)

    def yield_score(self, database: str) -> float | None:
        """Last completed window's yield score (None while warming up)."""
        state = self._states.get(database)
        return state.last_yield if state is not None else None

    def locality_fraction(self, database: str) -> float:
        """Current window's duplicate-locality hit fraction (0.0 empty)."""
        state = self._states.get(database)
        if state is None or not state.locality_seen:
            return 0.0
        return state.locality_hits / state.locality_seen

    # -- the deferred queue ------------------------------------------------------

    @property
    def pending_total(self) -> int:
        """Deferred records currently queued across all streams."""
        return len(self._entries)

    def pending(self, database: str) -> int:
        """Deferred records currently queued for one stream."""
        return self._pending_counts.get(database, 0)

    def databases_with_pending(self) -> list[str]:
        """Streams that currently have queued deferred records."""
        return sorted(
            database
            for database, count in self._pending_counts.items()
            if count
        )

    def _note_removed(self, database: str) -> None:
        count = self._pending_counts.get(database, 0) - 1
        if count > 0:
            self._pending_counts[database] = count
        else:
            self._pending_counts.pop(database, None)

    def defer(self, database: str, record_id: str, content: bytes) -> None:
        """Enqueue one record for a later out-of-line dedup pass.

        The caller is responsible for honouring ``max_deferred_records``
        (force-draining before enqueueing past the bound).
        """
        self._entries[record_id] = (database, content)
        self._stream_order.setdefault(database, deque()).append(record_id)
        self._global_order.append(record_id)
        self._pending_counts[database] = (
            self._pending_counts.get(database, 0) + 1
        )
        self.deferred_enqueued_total += 1

    def pop_deferred(self, database: str) -> tuple[str, bytes] | None:
        """Oldest live queued ``(record_id, content)`` of one stream."""
        order = self._stream_order.get(database)
        while order:
            record_id = order.popleft()
            entry = self._entries.pop(record_id, None)
            if entry is not None:
                self._note_removed(entry[0])
                return record_id, entry[1]
        return None

    def pop_oldest(self) -> tuple[str, str, bytes] | None:
        """Globally oldest live entry as ``(database, record_id, content)``.

        Popping globally oldest preserves per-stream FIFO order (each
        stream's entries still leave in arrival order), which is what the
        inline ≡ hybrid equivalence property needs.
        """
        while self._global_order:
            record_id = self._global_order.popleft()
            entry = self._entries.pop(record_id, None)
            if entry is not None:
                self._note_removed(entry[0])
                return entry[0], record_id, entry[1]
        return None

    def invalidate(self, record_id: str) -> bool:
        """Drop a queued entry superseded by a client update or delete.

        The queued bytes are stale — deduplicating them would index (and
        potentially re-encode other records against) content the client
        already replaced. Returns True when an entry was discarded.
        """
        entry = self._entries.pop(record_id, None)
        if entry is None:
            return False
        self._note_removed(entry[0])
        self.deferred_discarded_total += 1
        return True

    def discard_deferred(self, database: str) -> int:
        """Drop every queued entry of a stream (bypass teardown)."""
        doomed = [
            record_id
            for record_id, (entry_db, _) in self._entries.items()
            if entry_db == database
        ]
        for record_id in doomed:
            del self._entries[record_id]
        if doomed:
            self._pending_counts.pop(database, None)
        self.deferred_discarded_total += len(doomed)
        return len(doomed)

    def note_outofline(self, database: str, raw_size: int) -> None:
        """Account one deferred record drained through the pipeline."""
        self.outofline_records_total += 1
        self.outofline_bytes_total += raw_size
