"""Adaptive size-based dedup filter (§3.4.2, Fig. 7).

Across the paper's datasets the largest ~60 % of records contribute
90–95 % of all dedup savings, so skipping the small ones sheds ~40 % of
the dedup work for a 5–10 % ratio loss. The cut-off is learned online: it
starts at zero (dedup everything) and is refreshed every
``refresh_interval`` insertions to the configured percentile (default the
40 %-tile) of recently observed record sizes.
"""

from __future__ import annotations

from collections import deque

from repro.util.stats import percentile


class AdaptiveSizeFilter:
    """Per-database record-size cut-off with periodic refresh."""

    def __init__(
        self,
        cut_percentile: float = 40.0,
        refresh_interval: int = 1000,
        history: int = 10_000,
        enabled: bool = True,
    ) -> None:
        if not 0.0 <= cut_percentile < 100.0:
            raise ValueError(
                f"cut_percentile must be in [0, 100), got {cut_percentile}"
            )
        if refresh_interval < 1:
            raise ValueError(f"refresh_interval must be >= 1, got {refresh_interval}")
        self.cut_percentile = cut_percentile
        self.refresh_interval = refresh_interval
        self.enabled = enabled
        self._sizes: dict[str, deque[int]] = {}
        self._thresholds: dict[str, int] = {}
        self._counts: dict[str, int] = {}
        self._history = history
        self.skipped = 0

    def threshold(self, database: str) -> int:
        """Current cut-off size for a database (0 until first refresh)."""
        return self._thresholds.get(database, 0)

    def should_dedup(self, database: str, size: int) -> bool:
        """Observe a record's size; True if it should go through dedup.

        Records strictly smaller than the learned threshold bypass dedup
        and are treated as unique.
        """
        sizes = self._sizes.setdefault(database, deque(maxlen=self._history))
        sizes.append(size)
        count = self._counts.get(database, 0) + 1
        self._counts[database] = count
        if count % self.refresh_interval == 0:
            self._thresholds[database] = int(
                percentile(list(sizes), self.cut_percentile)
            )
        if not self.enabled:
            return True
        if size < self._thresholds.get(database, 0):
            self.skipped += 1
            return False
        return True
