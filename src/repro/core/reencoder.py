"""Secondary-node re-encoder (§4.1, Fig. 8).

The secondary receives *forward-encoded* oplog entries. For each one it

1. decodes the new record by applying the forward delta to the locally
   stored base record (source cache first, database on miss), then
2. re-derives the same backward/hop write-backs the primary derived, so
   both replicas converge to byte-identical storage.

Determinism comes from sharing :class:`~repro.core.planner.WritebackPlanner`
with the primary: same configuration + same ordered record stream ⇒ same
chains ⇒ same deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.writeback import WriteBackEntry
from repro.core.config import DedupConfig
from repro.core.engine import RecordProvider
from repro.core.planner import CpuMeter, WritebackPlanner
from repro.delta.decode import apply_delta
from repro.delta.instructions import deserialize
from repro.sim.costs import CostModel


@dataclass(frozen=True)
class ReencodeOutcome:
    """Result of applying one replicated entry on the secondary.

    Attributes:
        record_id: the new record.
        content: its reconstructed raw content (to store raw).
        writebacks: backward/hop re-encodings, identical to the primary's.
        cpu_seconds: simulated CPU spent decoding and re-encoding.
    """

    record_id: str
    content: bytes
    writebacks: tuple[WriteBackEntry, ...]
    cpu_seconds: float


class SecondaryReencoder:
    """Applies forward-encoded oplog entries on a secondary node."""

    def __init__(
        self, config: DedupConfig | None = None, costs: CostModel | None = None
    ) -> None:
        self.config = config if config is not None else DedupConfig()
        self.costs = costs if costs is not None else CostModel()
        self.planner = WritebackPlanner(self.config)
        self.decode_failures = 0

    def apply_raw(self, record_id: str, content: bytes) -> ReencodeOutcome:
        """Entry carried an unencoded record; cache it as a future base."""
        self.planner.source_cache.admit(record_id, content)
        return ReencodeOutcome(record_id, content, (), 0.0)

    def apply_encoded(
        self,
        record_id: str,
        base_id: str,
        forward_payload: bytes,
        provider: RecordProvider,
    ) -> ReencodeOutcome | None:
        """Decode a forward-encoded entry and plan matching write-backs.

        Returns None when the base record cannot be found locally — the
        caller must then fall back to asking the primary for the raw record
        (§4.1 footnote 4).
        """
        meter = CpuMeter(self.costs)
        base_content = self.planner.fetch(base_id, provider)
        if base_content is None:
            self.decode_failures += 1
            return None
        forward = deserialize(forward_payload)
        meter.charge_decode(len(base_content))
        content = apply_delta(base_content, forward)
        writebacks, _ = self.planner.plan(
            record_id, base_id, content, base_content, forward, provider, meter
        )
        return ReencodeOutcome(
            record_id=record_id,
            content=content,
            writebacks=tuple(writebacks),
            cpu_seconds=meter.seconds,
        )
