"""Online garbage collection: rollback-safe re-rooting and compaction.

Deletes of records that others decode from are *deferred* — the record
becomes a tombstone that keeps its bytes on disk until every dependent
stops referencing it. Before this module, only the read path reclaimed
tombstones (splicing them out of chains it happened to walk); chains
nobody reads leaked forever, and pages emptied by deletes were never
returned. :class:`GarbageCollector` closes both gaps as §3.3.2-style
background work:

* **chain re-rooting** — a tombstone's live dependents are re-encoded
  against the tombstone's own base (or, for a raw tombstone, one
  dependent is promoted to raw and the rest re-encoded against it),
  after which the tombstone's refcount reaches zero and it is reclaimed;
* **page compaction** — live payloads are migrated off sparse pages so
  empty pages can be freed through the store (both the accounting
  :class:`~repro.db.pagestore.PageStore` and the physical
  :class:`~repro.storage.heapfile.HeapFileStore` implement ``compact``).

Every cycle is a **rollback-safe batch**: plan (pure) → dry-run (decode
and pre-compute every new payload, skipping cohorts that would *grow*
the footprint or that hit corrupt pages) → apply (with an undo log of
full pre-images) → post-validate (byte-identity of every rewritten
chain plus the :mod:`repro.db.invariants` node-local sweep) → automatic
rollback when validation fails. GC never writes the oplog — a crash
mid-batch recovers by replaying the oplog to the pre-GC logical state,
which is observably identical by construction.

CPU is charged on the simulated cost model (``cpu_gc_scan_byte_s`` for
planning, ``cpu_reencode_byte_s`` for re-encoding,
``cpu_compaction_byte_s`` for migration) and every rewritten payload is
a background disk write, so GC shows up in the idleness signal like any
other maintenance work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.errors import CorruptChain
from repro.db.record import RecordForm, StoredRecord
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.instructions import serialize
from repro.sim.costs import CostModel

#: Batch outcomes (the ``outcome`` label of ``gc_batches_total``).
OUTCOME_APPLIED = "applied"
OUTCOME_ROLLED_BACK = "rolled_back"
OUTCOME_NOOP = "noop"
OUTCOMES = (OUTCOME_APPLIED, OUTCOME_ROLLED_BACK, OUTCOME_NOOP)


@dataclass(frozen=True)
class RerootAction:
    """One planned tombstone reclamation.

    Attributes:
        tombstone_id: the deleted record to reap.
        dependent_ids: live records whose stored delta decodes from it.
        grandbase_id: the tombstone's own base — dependents re-root onto
            it; None for a raw tombstone (promotion path).
        tombstone_bytes: stored bytes freed when the tombstone goes.
    """

    tombstone_id: str
    dependent_ids: tuple[str, ...]
    grandbase_id: str | None
    tombstone_bytes: int


@dataclass
class GcPlan:
    """A batch's worth of reclaimable work, computed without mutation."""

    reroots: list[RerootAction] = field(default_factory=list)
    #: Upper bound on bytes the re-roots can free (tombstone payloads).
    reclaimable_bytes: int = 0
    #: Allocated-but-unused page bytes compaction could consolidate.
    page_slack_bytes: int = 0
    pages_before: int = 0
    #: True when the slack justifies a compaction pass.
    compact_pages: bool = False

    @property
    def empty(self) -> bool:
        """True when the batch has nothing to do."""
        return not self.reroots and not self.compact_pages

    @property
    def estimated_reclaim_bytes(self) -> int:
        """Gate signal: tombstone bytes plus compactable page slack."""
        return self.reclaimable_bytes + (
            self.page_slack_bytes if self.compact_pages else 0
        )

    def describe(self) -> str:
        """Human-readable plan for ``repro cleanup --dry-run``."""
        lines = [
            f"reclaimable bytes : {self.estimated_reclaim_bytes}",
            f"chains to re-root : {len(self.reroots)}",
        ]
        for action in self.reroots:
            mode = (
                f"re-root onto {action.grandbase_id!r}"
                if action.grandbase_id is not None
                else "promote dependent to raw"
            )
            lines.append(
                f"  tombstone {action.tombstone_id!r}: "
                f"{len(action.dependent_ids)} dependent(s), "
                f"{action.tombstone_bytes} bytes, {mode}"
            )
        lines.append(
            "page compaction   : "
            + (
                f"yes ({self.pages_before} pages, "
                f"{self.page_slack_bytes} slack bytes)"
                if self.compact_pages
                else "no"
            )
        )
        return "\n".join(lines)


@dataclass
class GcReport:
    """Outcome of one GC batch."""

    outcome: str = OUTCOME_NOOP
    reroots_applied: int = 0
    promotions: int = 0
    tombstones_removed: int = 0
    reclaimed_bytes: int = 0
    pages_freed: int = 0
    compaction_bytes_moved: int = 0
    cpu_seconds: float = 0.0
    violations: list[str] = field(default_factory=list)


@dataclass
class _PreparedDependent:
    """One dependent's precomputed rewrite (dry-run output)."""

    record_id: str
    new_form: RecordForm
    new_payload: bytes
    new_base_id: str | None
    #: The content the stored chain must keep decoding to.
    content: bytes


@dataclass
class _PreparedReroot:
    """A re-root cohort ready to apply: every byte already computed."""

    action: RerootAction
    dependents: list[_PreparedDependent]


@dataclass
class _Snapshot:
    """Full pre-image of one record, for the undo log."""

    record: StoredRecord
    existed: bool
    form: RecordForm
    payload: bytes
    base_id: str | None
    raw_size: int
    ref_count: int
    deleted: bool


class GarbageCollector:
    """Refcounted delta-chain GC with rollback-safe batches.

    One instance per store (the primary node owns one); cumulative
    counters back the ``gc_*`` metric families.

    Args:
        db: the :class:`~repro.db.database.Database` to collect.
        costs: simulated cost model for CPU charging.
        page_slack_pages: minimum whole pages of slack before a batch
            includes a compaction pass.
    """

    def __init__(
        self,
        db,
        costs: CostModel | None = None,
        page_slack_pages: int = 1,
    ) -> None:
        self.db = db
        self.costs = costs if costs is not None else CostModel()
        self.page_slack_pages = page_slack_pages
        # GC re-encoding runs out-of-line; default parameters suffice.
        self._compressor = DeltaCompressor()
        #: Cumulative batch counts by outcome (``gc_batches_total``).
        self.batches: dict[str, int] = {outcome: 0 for outcome in OUTCOMES}
        self.reclaimed_bytes = 0
        self.reroots_applied = 0
        self.promotions = 0
        self.tombstones_removed = 0
        self.pages_freed = 0
        self.compaction_bytes_moved = 0
        self.cpu_seconds = 0.0
        #: Test/chaos seam: called with ``(db, prepared)`` after apply,
        #: before post-validation — lets a test corrupt the applied state
        #: to prove the batch rolls back.
        self.on_post_validate = None

    # -- plan (pure) --------------------------------------------------------

    def plan(self) -> GcPlan:
        """Scan the store for reclaimable work; mutates nothing."""
        db = self.db
        dependents: dict[str, list[str]] = {}
        scanned_bytes = 0
        for record_id, record in db.records.items():
            scanned_bytes += len(record.payload)
            if record.base_id is not None:
                dependents.setdefault(record.base_id, []).append(record_id)
        pending_bases = {
            entry.base_id for entry in db.writeback_cache.pending_entries()
        }
        plan = GcPlan()
        for tombstone_id in sorted(db.records):
            record = db.records[tombstone_id]
            if not record.deleted or record.ref_count <= 0:
                continue
            deps = sorted(dependents.get(tombstone_id, ()))
            # Only reap when every reference is a stored dependent: a
            # pending write-back holds the tombstone's exact bytes as
            # its delta base and must flush or drop first.
            if not deps or record.ref_count != len(deps):
                continue
            if tombstone_id in pending_bases:
                continue
            # Quarantined payloads cannot decode; the repair path owns
            # them. Dependents that are themselves tombstones are reaped
            # innermost-first across batches, not within one.
            involved = [tombstone_id, *deps]
            if record.base_id is not None:
                involved.append(record.base_id)
            if any(rid in db.quarantine for rid in involved):
                continue
            if any(db.records[dep].deleted for dep in deps):
                continue
            plan.reroots.append(
                RerootAction(
                    tombstone_id=tombstone_id,
                    dependent_ids=tuple(deps),
                    grandbase_id=(
                        record.base_id
                        if record.form is RecordForm.DELTA
                        else None
                    ),
                    tombstone_bytes=record.stored_size,
                )
            )
            plan.reclaimable_bytes += record.stored_size
        plan.pages_before = getattr(db.pages, "page_count", 0)
        page_size = self._page_size()
        if page_size and hasattr(db.pages, "compact"):
            capacity = plan.pages_before * page_size
            plan.page_slack_bytes = max(0, capacity - db.stored_bytes)
            plan.compact_pages = (
                plan.page_slack_bytes >= self.page_slack_pages * page_size
            )
        self.cpu_seconds += scanned_bytes * self.costs.cpu_gc_scan_byte_s
        return plan

    def _page_size(self) -> int:
        pages = self.db.pages
        size = getattr(pages, "page_size", None)
        if size is None:
            size = getattr(getattr(pages, "heap", None), "page_size", 0)
        return size or 0

    # -- dry-run ------------------------------------------------------------

    def dry_run(
        self, plan: GcPlan, max_records: int | None = None
    ) -> list[_PreparedReroot]:
        """Decode every affected chain and precompute the new payloads.

        Cohorts are skipped (not failed) when a page reads corrupt, the
        store changed since planning, or the rewritten cohort would
        occupy *more* bytes than tombstone + old deltas — GC must never
        grow the footprint (the property test holds it to that).
        """
        prepared: list[_PreparedReroot] = []
        budget = max_records
        for action in plan.reroots:
            if budget is not None and budget < len(action.dependent_ids):
                break
            cohort = self._prepare(action)
            if cohort is None:
                continue
            prepared.append(cohort)
            if budget is not None:
                budget -= len(action.dependent_ids)
        return prepared

    def _prepare(self, action: RerootAction) -> _PreparedReroot | None:
        db = self.db
        tombstone = db.records.get(action.tombstone_id)
        if tombstone is None or not tombstone.deleted:
            return None
        if tombstone.ref_count != len(action.dependent_ids):
            return None
        try:
            base_content = None
            if action.grandbase_id is not None:
                base_content = db.decode_stored_content(action.grandbase_id)
                if base_content is None:
                    return None
            dep_contents: dict[str, bytes] = {}
            for dep_id in action.dependent_ids:
                if dep_id not in db.records:
                    return None
                content = db.decode_stored_content(dep_id)
                if content is None:
                    return None
                dep_contents[dep_id] = content
        except CorruptChain:
            return None

        dependents: list[_PreparedDependent] = []
        reencoded_bytes = 0
        if action.grandbase_id is not None:
            for dep_id in action.dependent_ids:
                content = dep_contents[dep_id]
                payload = serialize(
                    self._compressor.compress(base_content, content)
                )
                reencoded_bytes += len(content)
                dependents.append(
                    _PreparedDependent(
                        record_id=dep_id,
                        new_form=RecordForm.DELTA,
                        new_payload=payload,
                        new_base_id=action.grandbase_id,
                        content=content,
                    )
                )
        else:
            # Raw tombstone: promote the dependent with the largest
            # content to raw (ties break on id for determinism), then
            # re-encode the rest against the promoted copy.
            promoted_id = max(
                action.dependent_ids,
                key=lambda rid: (len(dep_contents[rid]), rid),
            )
            promoted_content = dep_contents[promoted_id]
            dependents.append(
                _PreparedDependent(
                    record_id=promoted_id,
                    new_form=RecordForm.RAW,
                    new_payload=promoted_content,
                    new_base_id=None,
                    content=promoted_content,
                )
            )
            for dep_id in action.dependent_ids:
                if dep_id == promoted_id:
                    continue
                content = dep_contents[dep_id]
                payload = serialize(
                    self._compressor.compress(promoted_content, content)
                )
                reencoded_bytes += len(content)
                dependents.append(
                    _PreparedDependent(
                        record_id=dep_id,
                        new_form=RecordForm.DELTA,
                        new_payload=payload,
                        new_base_id=promoted_id,
                        content=content,
                    )
                )
        self.cpu_seconds += reencoded_bytes * self.costs.cpu_reencode_byte_s

        new_bytes = sum(len(dep.new_payload) for dep in dependents)
        old_bytes = action.tombstone_bytes + sum(
            len(db.records[dep_id].payload)
            for dep_id in action.dependent_ids
        )
        if new_bytes > old_bytes:
            return None  # re-rooting would grow the footprint; leave it
        return _PreparedReroot(action=action, dependents=dependents)

    # -- apply + rollback ---------------------------------------------------

    def _snapshot(self, record_id: str, undo: list[_Snapshot]) -> None:
        record = self.db.records.get(record_id)
        if record is None:
            return
        undo.append(
            _Snapshot(
                record=record,
                existed=True,
                form=record.form,
                payload=record.payload,
                base_id=record.base_id,
                raw_size=record.raw_size,
                ref_count=record.ref_count,
                deleted=record.deleted,
            )
        )

    def _apply(
        self, prepared: list[_PreparedReroot], undo: list[_Snapshot]
    ) -> GcReport:
        db = self.db
        report = GcReport()
        for cohort in prepared:
            action = cohort.action
            tombstone = db.records.get(action.tombstone_id)
            if tombstone is None or tombstone.ref_count != len(
                action.dependent_ids
            ):
                continue
            self._snapshot(action.tombstone_id, undo)
            if action.grandbase_id is not None:
                self._snapshot(action.grandbase_id, undo)
            for dep in cohort.dependents:
                self._snapshot(dep.record_id, undo)
            for dep in cohort.dependents:
                record = db.records[dep.record_id]
                record.form = dep.new_form
                record.payload = dep.new_payload
                record.base_id = dep.new_base_id
                if dep.new_form is RecordForm.RAW:
                    record.raw_size = len(dep.new_payload)
                    report.promotions += 1
                if dep.new_base_id is not None:
                    db.records[dep.new_base_id].ref_count += 1
                tombstone.ref_count -= 1
                db.pages.update(dep.record_id, db._disk_image(record))
                db._note_checksum(record)
                db._disk_request("write", len(dep.new_payload))
                report.reroots_applied += 1
            # Every dependent moved off the tombstone; reap it. _remove
            # releases the tombstone's own base reference (undone via
            # the grandbase snapshot above).
            db._remove(tombstone)
            report.tombstones_removed += 1
        return report

    def _rollback(self, undo: list[_Snapshot]) -> None:
        db = self.db
        for snap in reversed(undo):
            record = snap.record
            record.form = snap.form
            record.payload = snap.payload
            record.base_id = snap.base_id
            record.raw_size = snap.raw_size
            record.ref_count = snap.ref_count
            record.deleted = snap.deleted
            if record.record_id not in db.records:
                db.records[record.record_id] = record
                db.pages.place(record.record_id, db._disk_image(record))
            else:
                db.pages.update(record.record_id, db._disk_image(record))
            db._note_checksum(record)
            if db.record_cache is not None:
                db.record_cache.invalidate(record.record_id)

    # -- post-validate ------------------------------------------------------

    def _post_validate(self, prepared: list[_PreparedReroot]) -> list[str]:
        from repro.db.invariants import check_database

        db = self.db
        violations: list[str] = []
        for cohort in prepared:
            for dep in cohort.dependents:
                try:
                    decoded = db.decode_stored_content(dep.record_id)
                except CorruptChain as fault:
                    violations.append(
                        f"[gc-decode] {dep.record_id}: {fault}"
                    )
                    continue
                if decoded != dep.content:
                    violations.append(
                        f"[gc-identity] {dep.record_id}: rewritten chain "
                        "no longer decodes to the pre-GC content"
                    )
        report = check_database(db, node="gc")
        violations.extend(str(v) for v in report.violations)
        return violations

    # -- the batch ----------------------------------------------------------

    def run(
        self,
        plan: GcPlan | None = None,
        max_records: int | None = None,
        compact: bool = True,
    ) -> GcReport:
        """Run one rollback-safe GC batch: plan → dry-run → apply →
        post-validate, rolling back automatically on validation failure.

        Returns the batch's :class:`GcReport`; cumulative counters (for
        the ``gc_*`` metric families) advance only on success.
        """
        db = self.db
        cpu_before = self.cpu_seconds
        if plan is None:
            plan = self.plan()
        prepared = self.dry_run(plan, max_records=max_records)
        if not prepared and not plan.compact_pages:
            self.batches[OUTCOME_NOOP] += 1
            return GcReport(
                outcome=OUTCOME_NOOP,
                cpu_seconds=self.cpu_seconds - cpu_before,
            )

        before_bytes = db.stored_bytes
        undo: list[_Snapshot] = []
        report = self._apply(prepared, undo)
        if self.on_post_validate is not None:
            self.on_post_validate(db, prepared)
        if prepared:
            violations = self._post_validate(prepared)
            if violations:
                self._rollback(undo)
                self.batches[OUTCOME_ROLLED_BACK] += 1
                failed = GcReport(
                    outcome=OUTCOME_ROLLED_BACK, violations=violations
                )
                failed.cpu_seconds = self.cpu_seconds - cpu_before
                return failed

        if compact and plan.compact_pages:
            freed, moved = db.pages.compact()
            report.pages_freed = freed
            report.compaction_bytes_moved = moved
            if moved:
                self.cpu_seconds += moved * self.costs.cpu_compaction_byte_s
                db._disk_request("write", moved)

        report.outcome = OUTCOME_APPLIED
        report.reclaimed_bytes = max(0, before_bytes - db.stored_bytes)
        report.cpu_seconds = self.cpu_seconds - cpu_before
        self.batches[OUTCOME_APPLIED] += 1
        self.reclaimed_bytes += report.reclaimed_bytes
        self.reroots_applied += report.reroots_applied
        self.promotions += report.promotions
        self.tombstones_removed += report.tombstones_removed
        self.pages_freed += report.pages_freed
        self.compaction_bytes_moved += report.compaction_bytes_moved
        return report
