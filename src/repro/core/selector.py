"""Cache-aware source selection (§3.1.3).

The index lookup yields candidate similar records; exactly one becomes the
delta source. Pure similarity ranking would sometimes pick a record that
must be fetched from disk while an almost-as-similar one sits in the
source record cache — so dbDedup scores candidates as

    score = (# features shared with the new record) + reward·[in cache]

and picks the maximum. Fig. 13a sweeps the reward: 0 already benefits from
the cache passively; 2 (default) cuts the remaining misses by ~40 % with
no visible ratio loss; large rewards start preferring less-similar sources.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.cache.source_cache import SourceRecordCache


@dataclass(frozen=True)
class SelectedSource:
    """Outcome of source selection for one new record."""

    record_id: str
    feature_matches: int
    was_cached: bool
    score: int


class SourceSelector:
    """Scores index candidates and picks one source record."""

    def __init__(self, cache: SourceRecordCache, reward: int = 2) -> None:
        if reward < 0:
            raise ValueError(f"reward must be >= 0, got {reward}")
        self.cache = cache
        self.reward = reward

    def select(
        self,
        candidates_per_feature: list[list[str]],
        recency_of=None,
    ) -> SelectedSource | None:
        """Pick the best source from per-feature candidate lists.

        Args:
            candidates_per_feature: for each of the new record's features,
                the records the index returned for it. A record appearing
                under k features has k feature matches.
            recency_of: optional callable mapping a record id to a
                monotonically increasing insertion sequence. Ties in score
                break toward the *newest* candidate — §3.3.1's locality
                observation ("two records tend to be more similar if they
                are closer in creation time") made explicit. Small edits
                often leave the whole top-K sketch unchanged, so whole
                version chains tie on feature count; without this rule the
                winner is arbitrary and forks (overlapped encodings)
                multiply.

        Returns:
            The winning candidate, or None when there are no candidates.
        """
        matches: Counter[str] = Counter()
        seen_order: dict[str, int] = {}
        order = 0
        for feature_candidates in candidates_per_feature:
            for record_id in feature_candidates:
                matches[record_id] += 1
                seen_order[record_id] = order
                order += 1
        if not matches:
            return None

        best: SelectedSource | None = None
        best_key: tuple[int, int, int] | None = None
        for record_id, count in matches.items():
            cached = record_id in self.cache
            score = count + (self.reward if cached else 0)
            recency = (
                recency_of(record_id) if recency_of is not None
                else seen_order[record_id]
            )
            key = (score, int(cached), recency)
            if best_key is None or key > best_key:
                best_key = key
                best = SelectedSource(record_id, count, cached, score)
        return best
