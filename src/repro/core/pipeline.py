"""Staged encode pipeline: the §3.1/§4.1 workflow as explicit stages.

The paper describes deduplication as a four-step pipeline — sketch →
index lookup → source selection → delta compression — and this module is
that pipeline made literal. One :class:`EncodeContext` carries a record
through an ordered list of :class:`Stage` objects composed by
:class:`DedupPipeline`; each stage either advances the context or *drops*
it with a machine-readable reason, after which only the terminal
accounting stage still runs. The stage boundaries are the seams the
monolithic ``DedupEngine.encode()`` never had:

* **batching** — :meth:`DedupPipeline.run_batch` lets stages precompute
  over a whole batch at once (:meth:`Stage.prepare_batch`), which is how
  sketch extraction amortizes its vectorized numpy inner loops;
* **observability** — :class:`PipelineObserver` hooks see every stage
  entry/exit and every drop, feeding the per-stage counters in
  :class:`~repro.core.stats.DedupStats`.

Ordering contract: the stages from the index lookup onward mutate shared
state (feature index, insertion sequence, source cache, chain registry,
admission estimator) whose evolution must match the sequential insert
order exactly —
replica convergence depends on both ends of the replication link deriving
identical chains from the same ordered stream. ``run_batch`` therefore
hoists only *pure* work (sketching) into its batch phase and still runs
the stateful stage list record-at-a-time, which is what makes
``encode_batch() ≡ [encode(), …]`` hold byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence

from repro.cache.writeback import WriteBackEntry
from repro.core.planner import CpuMeter
from repro.delta.instructions import Delta, serialize

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, types only
    from repro.core.engine import DedupEngine, EncodeResult, RecordProvider
    from repro.core.selector import SelectedSource
    from repro.sketch.features import FeatureSketch


# -- drop reasons ---------------------------------------------------------------

#: Admission control has dedup permanently bypassed for the record's
#: stream (§3.4.1 governor semantics; hybrid-mode bypass transitions).
#: The label value keeps the historical "governor_bypass" spelling so
#: exported metrics stay comparable across versions.
DROP_GOVERNOR = "governor_bypass"
#: Preferred alias under the admission-control terminology.
DROP_BYPASS = DROP_GOVERNOR
#: The record is below the adaptive size filter's cut-off (§3.4.2).
DROP_SIZE_FILTER = "size_filtered"
#: The index returned no usable candidate (or only the record itself).
DROP_NO_CANDIDATE = "no_candidate"
#: The selected source's content could not be fetched.
DROP_MISSING_SOURCE = "missing_source"
#: The forward delta saved too little to justify a chain edge.
DROP_WEAK_DELTA = "weak_delta"

#: Every drop reason, in pipeline order of the stage that raises it.
DROP_REASONS = (
    DROP_GOVERNOR,
    DROP_SIZE_FILTER,
    DROP_NO_CANDIDATE,
    DROP_MISSING_SOURCE,
    DROP_WEAK_DELTA,
)


@dataclass
class EncodeContext:
    """Everything one record accumulates on its way through the pipeline.

    Attributes:
        database / record_id / content / raw_size: identity of the insert.
        provider: storage access for source fetches.
        meter: simulated-CPU accumulator for this record.
        sketch: similarity sketch (set by :class:`SketchStage`).
        prepared_sketch: batch-precomputed sketch, consumed (and cleared)
            by :class:`SketchStage` instead of re-extracting.
        candidates: per-feature index candidates.
        selected: the winning source record.
        source_content: the source's raw bytes.
        forward / forward_payload: forward delta and its serialized form.
        writebacks / overlapped: write-back plan (§3.2.2 / Fig. 5).
        drop_reason / drop_stage: why and where the record left the dedup
            path (None while it is still in flight).
        result: the finished :class:`~repro.core.engine.EncodeResult`,
            produced by the terminal accounting stage.
    """

    database: str
    record_id: str
    content: bytes
    provider: "RecordProvider"
    meter: CpuMeter
    raw_size: int = 0
    sketch: "FeatureSketch | None" = None
    prepared_sketch: "FeatureSketch | None" = None
    candidates: list[list[str]] | None = None
    selected: "SelectedSource | None" = None
    source_content: bytes | None = None
    forward: Delta | None = None
    forward_payload: bytes | None = None
    writebacks: tuple[WriteBackEntry, ...] = ()
    overlapped: bool = False
    drop_reason: str | None = None
    drop_stage: str | None = None
    result: "EncodeResult | None" = None

    def __post_init__(self) -> None:
        if not self.raw_size:
            self.raw_size = len(self.content)

    @property
    def dropped(self) -> bool:
        """True once some stage removed the record from the dedup path."""
        return self.drop_reason is not None

    def drop(self, stage: str, reason: str) -> None:
        """Mark the record as leaving the dedup path at ``stage``."""
        self.drop_reason = reason
        self.drop_stage = stage

    @property
    def passed_gates(self) -> bool:
        """True if the record made it past the governor and size gates.

        Gated records store unique *without* entering the source cache or
        the governor's ratio window; records dropped deeper in the
        pipeline become cache candidates and count toward the governor
        (§3.3.1: an unencoded record may be tomorrow's source).
        """
        return self.drop_reason not in (DROP_GOVERNOR, DROP_SIZE_FILTER)


class PipelineObserver:
    """Hook interface for per-stage instrumentation.

    Subclass and override what you need; all hooks default to no-ops.
    Observers must not mutate the context.
    """

    def on_stage_start(self, stage: str, ctx: EncodeContext) -> None:
        """Called before ``stage`` runs for ``ctx``."""

    def on_stage_end(
        self, stage: str, ctx: EncodeContext, cpu_seconds: float
    ) -> None:
        """Called after ``stage`` ran; ``cpu_seconds`` is the simulated
        CPU the stage charged to the record's meter."""

    def on_drop(self, stage: str, ctx: EncodeContext, reason: str) -> None:
        """Called when ``stage`` dropped ``ctx`` with ``reason``."""


class StageStatsObserver(PipelineObserver):
    """Feeds pipeline activity into :class:`~repro.core.stats.DedupStats`.

    Counting convention: a stage's ``in`` is every context that entered
    it, its ``out`` is every context that left it still on the dedup path,
    so ``in == out + drops-at-stage`` holds per stage and the terminal
    accounting stage sees every record exactly once.
    """

    def __init__(self, stats) -> None:
        self.stats = stats

    def on_stage_start(self, stage: str, ctx: EncodeContext) -> None:
        self.stats.note_stage_entry(stage)

    def on_stage_end(
        self, stage: str, ctx: EncodeContext, cpu_seconds: float
    ) -> None:
        self.stats.note_stage_exit(
            stage, cpu_seconds, survived=ctx.drop_stage != stage
        )

    def on_drop(self, stage: str, ctx: EncodeContext, reason: str) -> None:
        self.stats.note_drop(reason, stage, ctx.database)


class Stage(Protocol):
    """One step of the encode workflow.

    Attributes:
        name: stable identifier used in stats tables and observer hooks.
        always_runs: True for stages that must see *every* record, even
            ones already dropped (the terminal accounting stage).
    """

    name: str
    always_runs: bool

    def run(self, ctx: EncodeContext) -> None:
        """Advance one context; call ``ctx.drop(...)`` to end its path."""
        ...

    def prepare_batch(self, contexts: Sequence[EncodeContext]) -> None:
        """Optional vectorized precomputation over a whole batch.

        Runs once per batch *before* any per-record execution, so it must
        be pure: no shared-state mutation, no meter charges — only
        derived values parked on the contexts.
        """
        ...


class _StageBase:
    """Default stage behaviour: per-record only, engine-bound."""

    name = "stage"
    always_runs = False

    def __init__(self, engine: "DedupEngine") -> None:
        self.engine = engine

    def prepare_batch(self, contexts: Sequence[EncodeContext]) -> None:
        """No batch precomputation by default."""


class AdmissionGate(_StageBase):
    """Admission control: bypass streams whose dedup is disabled.

    Covers §3.4.1 (governor mode) and the hybrid mode's permanent-bypass
    transitions. Deferral never reaches this stage — the engine parks
    deferred records *before* building a pipeline context, so every
    record the pipeline sees is counted exactly once in its stats.
    """

    name = "admission_gate"

    def run(self, ctx: EncodeContext) -> None:
        """Drop the record when its stream's dedup is disabled."""
        if not self.engine.admission.is_enabled(ctx.database):
            self.engine.stats.note_bypass()
            self.engine.stats_for(ctx.database).note_bypass()
            ctx.drop(self.name, DROP_GOVERNOR)


#: Deprecated alias (pre-admission name of the stage class).
GovernorGate = AdmissionGate


class SizeFilterGate(_StageBase):
    """§3.4.2: skip records below the learned size cut-off."""

    name = "size_filter_gate"

    def run(self, ctx: EncodeContext) -> None:
        """Observe the record's size; drop it below the cut-off."""
        if not self.engine.size_filter.should_dedup(ctx.database, ctx.raw_size):
            self.engine.stats.note_filtered()
            self.engine.stats_for(ctx.database).note_filtered()
            ctx.drop(self.name, DROP_SIZE_FILTER)


class SketchStage(_StageBase):
    """§3.1.1: content-defined chunking + top-K consistent sampling.

    The only stage with a real batch phase: :meth:`prepare_batch` sketches
    the whole batch in one vectorized pass (one padded gear-hash sweep
    over the concatenated contents when the vectorized chunker lane is
    active — see :mod:`repro.chunking.cdc`), and :meth:`run` then just
    consumes the parked sketch. CPU is still charged per record at
    :meth:`run` time so gated records never pay for a sketch they did
    not use.
    """

    name = "sketch"

    def prepare_batch(self, contexts: Sequence[EncodeContext]) -> None:
        live = [ctx for ctx in contexts if not ctx.dropped]
        if not live:
            return
        sketches = self.engine.extractor.sketch_many(
            [ctx.content for ctx in live]
        )
        for ctx, sketch in zip(live, sketches):
            ctx.prepared_sketch = sketch

    def run(self, ctx: EncodeContext) -> None:
        """Charge chunking CPU and attach the similarity sketch."""
        ctx.meter.charge_chunking(ctx.raw_size)
        if ctx.prepared_sketch is not None:
            ctx.sketch = ctx.prepared_sketch
            ctx.prepared_sketch = None
        else:
            ctx.sketch = self.engine.extractor.sketch(ctx.content)


class IndexLookupStage(_StageBase):
    """§3.1.2: per-feature candidate lookup, registering the new record."""

    name = "index_lookup"

    def run(self, ctx: EncodeContext) -> None:
        """Collect per-feature candidates; register the record."""
        index = self.engine.index_for(ctx.database)
        ctx.candidates = [
            index.lookup_and_insert(feature, ctx.record_id)
            for feature in ctx.sketch.features
        ]
        self.engine.register_insert(ctx.database, ctx.record_id)
        # Tiered demotions/promotions triggered by this record's lookups
        # and inserts are charged to this encode's CPU meter, so the sim
        # sees tier churn as background work on the node.
        self.engine.charge_index_maintenance(index, ctx.meter)


class SourceSelectStage(_StageBase):
    """§3.1.3: cache-aware scoring, then source content resolution."""

    name = "source_select"

    def run(self, ctx: EncodeContext) -> None:
        """Pick the source record and resolve its content."""
        engine = self.engine
        selected = engine.selector.select(
            ctx.candidates,
            recency_of=lambda rid: engine._insert_seq.get(rid, -1),
        )
        if selected is None or selected.record_id == ctx.record_id:
            ctx.drop(self.name, DROP_NO_CANDIDATE)
            return
        ctx.selected = selected
        ctx.source_content = engine.planner.fetch(
            selected.record_id, ctx.provider
        )
        if ctx.source_content is None:
            ctx.drop(self.name, DROP_MISSING_SOURCE)


class ForwardDeltaStage(_StageBase):
    """§3.2.1: forward delta against the source; reject weak savings."""

    name = "forward_delta"

    def run(self, ctx: EncodeContext) -> None:
        """Compute the forward delta; drop weak savings."""
        ctx.meter.charge_delta(len(ctx.source_content) + ctx.raw_size)
        ctx.forward = self.engine.planner.compressor.compress(
            ctx.source_content, ctx.content
        )
        ctx.forward_payload = serialize(ctx.forward)
        min_ratio = self.engine.config.min_savings_ratio
        if len(ctx.forward_payload) >= ctx.raw_size * min_ratio:
            ctx.drop(self.name, DROP_WEAK_DELTA)


class WritebackPlanStage(_StageBase):
    """§3.2.2/§3.3: extend the chain, plan backward/hop write-backs."""

    name = "writeback_plan"

    def run(self, ctx: EncodeContext) -> None:
        """Plan the chain extension and its write-backs."""
        writebacks, overlapped = self.engine.planner.plan(
            ctx.record_id,
            ctx.selected.record_id,
            ctx.content,
            ctx.source_content,
            ctx.forward,
            ctx.provider,
            ctx.meter,
        )
        ctx.writebacks = tuple(writebacks)
        ctx.overlapped = overlapped


class AccountingStage(_StageBase):
    """Terminal stage: statistics, governor feedback, the EncodeResult.

    Runs for every record — deduped or dropped — so the per-stage
    counters it feeds always reconcile to ``records_seen``.
    """

    name = "accounting"
    always_runs = True

    def run(self, ctx: EncodeContext) -> None:
        """Finalize statistics and build the EncodeResult."""
        from repro.core.engine import EncodeResult

        engine = self.engine
        if not ctx.dropped:
            if ctx.overlapped:
                engine.stats.note_overlap()
            engine.stats.note_writebacks_planned(len(ctx.writebacks))
            oplog_size = len(ctx.forward_payload)
            planned_savings = sum(
                entry.space_saving for entry in ctx.writebacks
            )
            ideal_delta = (
                ctx.raw_size
                if engine.config.encoding == "forward"
                else ctx.raw_size - planned_savings
            )
            engine.stats.record_insert(
                ctx.raw_size, oplog_size, ideal_delta, deduped=True
            )
            engine.stats_for(ctx.database).record_insert(
                ctx.raw_size, oplog_size, ideal_delta, deduped=True
            )
            # The audit trail is fed in lockstep with the engine-scope
            # record_insert above — its reconciliation identity depends
            # on exactly this 1:1 pairing.
            engine.audit.record(
                record_id=ctx.record_id,
                database=ctx.database,
                reason="deduped",
                raw_size=ctx.raw_size,
                saved_bytes=ctx.raw_size - oplog_size,
                source_id=ctx.selected.record_id,
                similarity=ctx.selected.score,
            )
            if ctx.sketch is not None:
                engine.stats.note_chunks(ctx.sketch.chunk_count)
            # Source-cache hit/miss accounting lives in the cache itself
            # since the unification; stats delegate to it.
            engine.observe_admission(
                ctx.database,
                ctx.raw_size,
                oplog_size,
                features=ctx.sketch.features if ctx.sketch else None,
            )
            ctx.result = EncodeResult(
                record_id=ctx.record_id,
                database=ctx.database,
                raw_size=ctx.raw_size,
                deduped=True,
                source_id=ctx.selected.record_id,
                forward_payload=ctx.forward_payload,
                oplog_size=oplog_size,
                writebacks=ctx.writebacks,
                ideal_stored_delta=ideal_delta,
                overlapped=ctx.overlapped,
                source_was_cached=ctx.selected.was_cached,
                cpu_seconds=ctx.meter.seconds,
            )
            return

        if ctx.passed_gates:
            # §3.3.1: an unencoded record still enters the source cache
            # (it may become tomorrow's source) and the admission window.
            engine.source_cache.admit(ctx.record_id, ctx.content)
            engine.observe_admission(
                ctx.database,
                ctx.raw_size,
                ctx.raw_size,
                features=ctx.sketch.features if ctx.sketch else None,
            )
        engine.stats.record_insert(
            ctx.raw_size, ctx.raw_size, ctx.raw_size, deduped=False
        )
        engine.stats_for(ctx.database).record_insert(
            ctx.raw_size, ctx.raw_size, ctx.raw_size, deduped=False
        )
        engine.audit.record(
            record_id=ctx.record_id,
            database=ctx.database,
            reason=ctx.drop_reason or "unique",
            raw_size=ctx.raw_size,
            saved_bytes=0,
        )
        if ctx.sketch is not None:
            engine.stats.note_chunks(ctx.sketch.chunk_count)
        ctx.result = EncodeResult(
            record_id=ctx.record_id,
            database=ctx.database,
            raw_size=ctx.raw_size,
            deduped=False,
            oplog_size=ctx.raw_size,
            ideal_stored_delta=ctx.raw_size,
            cpu_seconds=ctx.meter.seconds,
        )


class DedupPipeline:
    """Composes the stage list and drives contexts through it."""

    def __init__(
        self,
        stages: Sequence[Stage],
        observers: Sequence[PipelineObserver] = (),
    ) -> None:
        self.stages = list(stages)
        self.observers = list(observers)

    def add_observer(self, observer: PipelineObserver) -> None:
        """Attach an instrumentation hook (sees all subsequent records)."""
        self.observers.append(observer)

    def stage_names(self) -> list[str]:
        """The stage identifiers, in execution order."""
        return [stage.name for stage in self.stages]

    def run(self, ctx: EncodeContext) -> EncodeContext:
        """Drive one context through every applicable stage."""
        for stage in self.stages:
            if ctx.dropped and not stage.always_runs:
                continue
            for observer in self.observers:
                observer.on_stage_start(stage.name, ctx)
            cpu_before = ctx.meter.seconds
            stage.run(ctx)
            cpu_spent = ctx.meter.seconds - cpu_before
            if ctx.drop_stage == stage.name:
                for observer in self.observers:
                    observer.on_drop(stage.name, ctx, ctx.drop_reason)
            for observer in self.observers:
                observer.on_stage_end(stage.name, ctx, cpu_spent)
        return ctx

    def run_batch(
        self, contexts: Sequence[EncodeContext]
    ) -> Sequence[EncodeContext]:
        """Drive a whole batch: batched precompute, then ordered execution.

        Each stage's :meth:`Stage.prepare_batch` runs once over the batch
        (this is where sketching vectorizes); the stage list itself then
        executes record-at-a-time in batch order, because the stateful
        stages must observe inserts in exactly the sequential order — see
        the module docstring's ordering contract.
        """
        for stage in self.stages:
            stage.prepare_batch(contexts)
        for ctx in contexts:
            self.run(ctx)
        return contexts


def build_default_pipeline(
    engine: "DedupEngine", observers: Sequence[PipelineObserver] = ()
) -> DedupPipeline:
    """The standard dbDedup stage list wired to one engine."""
    return DedupPipeline(
        stages=[
            AdmissionGate(engine),
            SizeFilterGate(engine),
            SketchStage(engine),
            IndexLookupStage(engine),
            SourceSelectStage(engine),
            ForwardDeltaStage(engine),
            WritebackPlanStage(engine),
            AccountingStage(engine),
        ],
        observers=observers,
    )
