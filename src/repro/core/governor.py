"""Automatic deduplication governor (§3.4.1).

Not every database dedups well; for those that do not, the whole pipeline
is pure overhead. The governor tracks the achieved compression ratio per
database over windows of insertions and permanently disables dedup for a
database whose ratio stays under the threshold — the paper's rationale
being that workload dedupability rarely changes character over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class _DatabaseState:
    bytes_in: int = 0
    bytes_out: int = 0
    inserts: int = 0
    disabled: bool = False


@dataclass
class DedupGovernor:
    """Per-database dedup kill switch.

    Attributes:
        threshold: minimum window compression ratio to stay enabled (1.1).
        window: number of insertions per evaluation window (100k in the
            paper; smaller for simulated corpora).
    """

    threshold: float = 1.1
    window: int = 100_000
    _states: dict[str, _DatabaseState] = field(default_factory=dict)
    disabled_databases: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.threshold < 1.0:
            raise ValueError(f"threshold must be >= 1.0, got {self.threshold}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def is_enabled(self, database: str) -> bool:
        """Should records of this database go through dedup at all?"""
        return database not in self.disabled_databases

    def observe(self, database: str, bytes_in: int, bytes_out: int) -> bool:
        """Fold one record's in/out sizes; returns False if dedup just
        got disabled for the database (the caller must then drop its index
        partition).

        A disabled database is never re-enabled (§3.4.1: "dbDedup does not
        reactivate a database for which dedup is already disabled").
        """
        state = self._states.setdefault(database, _DatabaseState())
        if state.disabled:
            return False
        state.bytes_in += bytes_in
        state.bytes_out += bytes_out
        state.inserts += 1
        if state.inserts < self.window:
            return True
        ratio = state.bytes_in / state.bytes_out if state.bytes_out else 1.0
        if ratio < self.threshold:
            state.disabled = True
            self.disabled_databases.add(database)
            return False
        # Healthy window: start a fresh one.
        state.bytes_in = 0
        state.bytes_out = 0
        state.inserts = 0
        return True

    def window_ratio(self, database: str) -> float:
        """Current window's compression ratio (1.0 when empty)."""
        state = self._states.get(database)
        if state is None or not state.bytes_out:
            return 1.0
        return state.bytes_in / state.bytes_out
