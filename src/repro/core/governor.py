"""Deprecated home of the §3.4.1 governor — see :mod:`repro.core.admission`.

The binary per-database kill switch grew into the three-way per-stream
:class:`~repro.core.admission.AdmissionController`; the paper-faithful
one-way semantics live on as its ``mode="governor"`` configuration
(``DedupConfig.admission_mode="governor"``, still the default).

:class:`DedupGovernor` remains importable for old call sites: it is a
governor-mode controller with the legacy constructor signature, warning
once per process via :mod:`repro.util.deprecation`.
"""

from __future__ import annotations

from repro.core.admission import MODE_GOVERNOR, AdmissionController
from repro.util.deprecation import warn_once


class DedupGovernor(AdmissionController):
    """Per-database dedup kill switch (deprecated shim).

    Attributes:
        threshold: minimum window compression ratio to stay enabled (1.1).
        window: number of insertions per evaluation window (100k in the
            paper; smaller for simulated corpora).
    """

    def __init__(self, threshold: float = 1.1, window: int = 100_000) -> None:
        warn_once(
            "DedupGovernor",
            "DedupGovernor is deprecated; use repro.core.admission."
            "AdmissionController (the governor survives as "
            "admission_mode='governor', the default)",
        )
        super().__init__(mode=MODE_GOVERNOR, threshold=threshold, window=window)
