"""Configuration for the dbDedup engine — every §3/§5 knob in one place."""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.spec import IndexSpec
from repro.util.deprecation import warn_once

#: Flat index knobs that predate :class:`IndexSpec`, with their defaults —
#: still accepted (folded into a cuckoo spec with a one-time deprecation
#: warning) but rejected when an explicit ``index`` spec is also given.
_FLAT_INDEX_KNOBS = (
    ("index_buckets", 1 << 16),
    ("index_slots", 4),
    ("max_candidates", 8),
)


@dataclass
class DedupConfig:
    """Tunable parameters, defaulting to the paper's chosen values.

    Attributes:
        chunk_size: average content-defined chunk size for feature
            extraction. Fig. 1 headlines 1 KB and 64 B; 1 KB is the
            general default.
        chunker_impl: which CDC lane extracts boundaries — ``"scalar"``
            (byte-at-a-time oracle), ``"vectorized"`` (numpy bulk
            sweep), or ``"auto"`` (vectorized whenever available, the
            default). Both lanes produce byte-identical boundaries and
            sketches; the knob trades differential-testing fidelity
            against throughput, never changing results.
        top_k: sketch size K (§3.1.1; paper default 8).
        index: the :class:`~repro.index.spec.IndexSpec` describing the
            feature index (kind, geometry, tiered memory budget). None
            falls back to the flat knobs below via :meth:`resolved_index`.
        max_candidates: per-feature cap on similar records returned by the
            index before LRU eviction kicks in (§3.1.2). **Deprecated** as
            a flat knob — set ``index=IndexSpec(max_candidates=...)``.
        index_buckets / index_slots: cuckoo feature index geometry.
            **Deprecated** — set ``index=IndexSpec(num_buckets=...,
            slots_per_bucket=...)`` instead; overriding these while also
            passing ``index`` is an error.
        anchor_interval: delta-compression anchor sampling interval
            (§4.2; paper default 64).
        delta_window: delta-compression checksum window (xDelta's 16).
        encoding: storage-side encoding scheme — ``'hop'`` (paper default),
            ``'backward'``, ``'version-jumping'``, or ``'forward'`` (no
            storage encoding; network-only dedup, like sDedup).
        hop_distance: hop distance / cluster size H (§5.5 default 16).
        source_cache_bytes: source record cache budget (§5.4: 32 MB).
        writeback_cache_bytes: lossy write-back cache budget (§5.4: 8 MB).
        cache_reward: cache-aware selection reward score (§3.1.3 default 2).
        min_savings_ratio: a forward delta must be at most this fraction of
            the raw record, or the record is stored unique — a delta that
            saves almost nothing is not worth a chain edge.
        governor_threshold: compression ratio below which governor-mode
            admission disables dedup for a database (§3.4.1: 1.1).
        governor_window: inserts per admission evaluation window
            (§3.4.1: 100 000; simulations use smaller corpora, so this
            is configurable).
        admission_mode: per-stream admission policy — ``"governor"``
            (paper-faithful one-way kill switch, the default),
            ``"inline"`` (always dedup inline), or ``"hybrid"``
            (three-way inline / defer / bypass decisions driven by the
            online yield estimator).
        admission_inline_threshold: hybrid mode — yield score (window
            ratio + weighted locality) at or above which a stream
            dedups inline; below it, records defer to the out-of-line
            queue.
        admission_bypass_threshold: hybrid mode — yield score below
            which a window counts toward permanent bypass; ``<= 0``
            disables bypass (low-yield streams defer forever instead).
        admission_bypass_patience: consecutive low-yield windows before
            a hybrid-mode stream is permanently bypassed.
        admission_locality_weight: weight of the duplicate-locality
            fraction in the yield score.
        admission_locality_depth: recent sketches per stream retained
            for the locality signal.
        admission_queue_records: global bound on queued deferred
            records; at the bound the oldest entries are force-drained
            through the pipeline before new ones are queued.
        size_filter_percentile: percentile of record size used as the
            dedup cut-off (§3.4.2: the 40 %-tile).
        size_filter_interval: inserts between cut-off refreshes (1000).
        size_filter_enabled: the filter can be disabled for ablations.
        idle_queue_threshold: disk queue length at or below which the
            write-back cache flushes (§3.3.2's idleness signal).
        gc_enabled: run the online garbage collector
            (:class:`repro.core.gc.GarbageCollector`) during idle
            slices. Off by default: reclamation changes stored forms,
            so baselines opt in explicitly.
        gc_reclaim_threshold_bytes: minimum estimated reclaimable bytes
            (tombstones + compactable page slack) before an idle slice
            spends time on a GC batch.
        gc_max_batch_records: most dependent records re-encoded per GC
            batch — bounds the work (and the rollback scope) of one
            idle slice.
        saving_sample_cap: maximum per-record saving samples retained for
            Fig. 7's weighted CDF; beyond the cap the engine reservoir-
            samples so memory stays O(cap) however long the run. <= 0
            keeps every sample (unbounded; pre-cap behaviour).
    """

    chunk_size: int = 1024
    chunker_impl: str = "auto"
    top_k: int = 8
    index: IndexSpec | None = None
    max_candidates: int = 8
    index_buckets: int = 1 << 16
    index_slots: int = 4
    anchor_interval: int = 64
    delta_window: int = 16
    encoding: str = "hop"
    hop_distance: int = 16
    source_cache_bytes: int = 32 * 1024 * 1024
    writeback_cache_bytes: int = 8 * 1024 * 1024
    cache_reward: int = 2
    min_savings_ratio: float = 0.9
    governor_threshold: float = 1.1
    governor_window: int = 100_000
    admission_mode: str = "governor"
    admission_inline_threshold: float = 1.2
    admission_bypass_threshold: float = 0.0
    admission_bypass_patience: int = 2
    admission_locality_weight: float = 0.5
    admission_locality_depth: int = 64
    admission_queue_records: int = 4096
    size_filter_percentile: float = 40.0
    size_filter_interval: int = 1000
    size_filter_enabled: bool = True
    idle_queue_threshold: int = 0
    gc_enabled: bool = False
    gc_reclaim_threshold_bytes: int = 64 * 1024
    gc_max_batch_records: int = 64
    murmur_seed: int = 0x5EED
    saving_sample_cap: int = 100_000

    def __post_init__(self) -> None:
        if self.chunk_size < 8 or self.chunk_size & (self.chunk_size - 1):
            raise ValueError(
                f"chunk_size must be a power of two >= 8, got {self.chunk_size}"
            )
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        from repro.chunking.cdc import CHUNKER_IMPLS

        if self.chunker_impl not in CHUNKER_IMPLS:
            raise ValueError(
                f"chunker_impl must be one of {CHUNKER_IMPLS}, "
                f"got {self.chunker_impl!r}"
            )
        if self.encoding not in ("hop", "backward", "version-jumping", "forward"):
            raise ValueError(f"unknown encoding scheme {self.encoding!r}")
        if not 0.0 < self.min_savings_ratio <= 1.0:
            raise ValueError(
                f"min_savings_ratio must be in (0, 1], got {self.min_savings_ratio}"
            )
        if self.hop_distance < 2:
            raise ValueError(f"hop_distance must be >= 2, got {self.hop_distance}")
        if not 0.0 <= self.size_filter_percentile < 100.0:
            raise ValueError(
                f"size_filter_percentile must be in [0, 100), got "
                f"{self.size_filter_percentile}"
            )
        if self.gc_reclaim_threshold_bytes < 0:
            raise ValueError(
                "gc_reclaim_threshold_bytes must be >= 0, got "
                f"{self.gc_reclaim_threshold_bytes}"
            )
        if self.gc_max_batch_records < 1:
            raise ValueError(
                f"gc_max_batch_records must be >= 1, got "
                f"{self.gc_max_batch_records}"
            )
        # Validate the index configuration (and emit the flat-knob
        # deprecation warning, if due) at construction time.
        self.resolved_index()
        # Admission parameters share the controller's validation so a bad
        # spec fails at construction, not at first insert.
        from repro.core.admission import AdmissionController

        AdmissionController(
            mode=self.admission_mode,
            threshold=self.governor_threshold,
            window=self.governor_window,
            inline_yield_threshold=self.admission_inline_threshold,
            bypass_yield_threshold=self.admission_bypass_threshold,
            bypass_patience=self.admission_bypass_patience,
            locality_weight=self.admission_locality_weight,
            locality_depth=self.admission_locality_depth,
            max_deferred_records=self.admission_queue_records,
        )

    def resolved_index(self) -> IndexSpec:
        """The effective :class:`IndexSpec`, folding in deprecated knobs.

        Resolution order:

        * ``index`` set and no flat knob overridden → the spec, as given;
        * ``index`` set *and* a flat knob overridden → ``ValueError``
          (two sources of truth for the same geometry);
        * flat knobs overridden, no ``index`` → a cuckoo spec built from
          them, after a once-per-process deprecation warning;
        * neither → the default cuckoo spec.
        """
        overridden = [
            name
            for name, default in _FLAT_INDEX_KNOBS
            if getattr(self, name) != default
        ]
        if self.index is not None:
            if overridden:
                raise ValueError(
                    "DedupConfig.index and deprecated flat index knobs "
                    f"({', '.join(overridden)}) were both set; configure "
                    "the index through IndexSpec alone"
                )
            return self.index
        if overridden:
            warn_once(
                "DedupConfig.index_flat_knobs",
                "DedupConfig's flat index knobs (index_buckets, "
                "index_slots, max_candidates) are deprecated; pass "
                "index=IndexSpec(...) instead",
            )
        return IndexSpec(
            num_buckets=self.index_buckets,
            slots_per_bucket=self.index_slots,
            max_candidates=self.max_candidates,
        )
