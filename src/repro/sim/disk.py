"""Simulated disk with a FIFO service queue.

The queue is the load signal §3.3.2's write-back cache polls: "we use the
I/O queue length as an indication" of idleness. Requests are served in
submission order at the cost model's service rate; a foreground request's
latency is its wait behind the queue plus its own service time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel


@dataclass(frozen=True)
class DiskRequest:
    """One queued request: completion timestamp and size, for accounting."""

    kind: str  # "read" | "write"
    nbytes: int
    completes_at: float


class SimDisk:
    """FIFO disk: requests serialize behind ``busy_until``.

    Background requests (write-backs) are fire-and-forget: they occupy the
    queue but nobody waits on them. Foreground requests return the latency
    the issuing operation must absorb.
    """

    def __init__(self, clock: SimClock, costs: CostModel | None = None) -> None:
        self.clock = clock
        self.costs = costs if costs is not None else CostModel()
        self._pending: deque[DiskRequest] = deque()
        self._busy_until = 0.0
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Optional fault hook ``(kind, nbytes) -> None``; may raise
        #: :class:`repro.sim.faults.TransientIOError`, in which case the
        #: request never enters the queue and the caller must retry.
        self.interceptor = None
        #: Tracer the device attributes ``disk_s`` (service time) to —
        #: the owning node installs the cluster's shared tracer.
        self.tracer: Tracer = NULL_TRACER

    def _reap(self) -> None:
        now = self.clock.now
        while self._pending and self._pending[0].completes_at <= now:
            self._pending.popleft()

    def queue_length(self) -> int:
        """Outstanding (unfinished) requests at the current simulated time."""
        self._reap()
        return len(self._pending)

    def is_idle(self, max_queue: int = 0) -> bool:
        """True when at most ``max_queue`` requests are outstanding."""
        return self.queue_length() <= max_queue

    def submit(self, kind: str, nbytes: int) -> float:
        """Enqueue a request; returns its latency from now until completion.

        The caller decides whether to absorb the latency (foreground read/
        write) or ignore it (background write-back).
        """
        if kind not in ("read", "write"):
            raise ValueError(f"unknown disk request kind {kind!r}")
        if nbytes < 0:
            raise ValueError(f"negative request size {nbytes}")
        if self.interceptor is not None:
            self.interceptor(kind, nbytes)
        self._reap()
        now = self.clock.now
        start = max(now, self._busy_until)
        service = self.costs.disk_time(nbytes)
        completes = start + service
        self._busy_until = completes
        self._pending.append(DiskRequest(kind, nbytes, completes))
        if kind == "read":
            self.reads += 1
            self.bytes_read += nbytes
        else:
            self.writes += 1
            self.bytes_written += nbytes
        self.tracer.add_cost("disk_s", service)
        return completes - now

    def read(self, nbytes: int) -> float:
        """Foreground read; returns latency to absorb."""
        return self.submit("read", nbytes)

    def write(self, nbytes: int) -> float:
        """Foreground write; returns latency to absorb."""
        return self.submit("write", nbytes)
