"""Deterministic discrete-event cost model for the performance experiments.

The paper's Fig. 12/13 measure a real 3-node MongoDB cluster. This package
substitutes a deterministic simulation: a clock, a disk with a FIFO service
queue (whose length drives the write-back idleness trigger of §3.3.2), a
network link, and a CPU cost table calibrated to paper-era hardware. The
experiments read *relative* effects off this model — dedup on/off, cache
on/off — which is what the paper's performance claims are about.
"""

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.disk import SimDisk
from repro.sim.faults import (
    CorruptPageReads,
    CrashNode,
    DeliveryFault,
    DropBatches,
    FaultPlan,
    TransientIOError,
    TransientIOErrors,
)
from repro.sim.network import SimNetwork

__all__ = [
    "SimClock",
    "CostModel",
    "SimDisk",
    "SimNetwork",
    "FaultPlan",
    "DropBatches",
    "TransientIOErrors",
    "CorruptPageReads",
    "CrashNode",
    "DeliveryFault",
    "TransientIOError",
]
