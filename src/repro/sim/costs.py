"""CPU/disk/network cost table (calibrated to the paper's testbed class).

Every figure is a *rate* on commodity 2016 hardware: HDD storage
(~100 MB/s sequential, ~5 ms seek), gigabit-class WAN-ish replication
links, and single-core software rates in the range the paper itself
reports (e.g. Fig. 15 puts delta compression at 30–60 MB/s). Absolute
values only set the scale; the experiments compare configurations under
the *same* table.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Simulated service times. All rates in seconds or seconds/byte."""

    #: Positioning cost charged per disk request (HDD seek + rotation).
    disk_seek_s: float = 0.005
    #: Sequential disk transfer: 100 MB/s.
    disk_byte_s: float = 1.0 / (100 * 1024 * 1024)
    #: Replication link: 1 Gbit/s ≈ 119 MiB/s.
    network_byte_s: float = 1.0 / (119 * 1024 * 1024)
    #: Per-message network round-trip overhead.
    network_rtt_s: float = 0.001
    #: Chunking + feature extraction: ~400 MB/s streaming.
    cpu_chunk_byte_s: float = 1.0 / (400 * 1024 * 1024)
    #: Delta compression: ~40 MB/s (Fig. 15's midpoint).
    cpu_delta_byte_s: float = 1.0 / (40 * 1024 * 1024)
    #: Delta re-encode runs "at memory speed": ~2 GB/s.
    cpu_reencode_byte_s: float = 1.0 / (2 * 1024 * 1024 * 1024)
    #: Delta decode: ~400 MB/s.
    cpu_decode_byte_s: float = 1.0 / (400 * 1024 * 1024)
    #: Block compression (Snappy-class): ~250 MB/s.
    cpu_compress_byte_s: float = 1.0 / (250 * 1024 * 1024)
    #: Tiered-index maintenance (demoting/promoting entries between the
    #: hot and cold tiers): ~200 MB/s of entry bytes moved — hash-heavy
    #: pointer shuffling, cheaper than delta work, dearer than streaming.
    cpu_index_maintain_byte_s: float = 1.0 / (200 * 1024 * 1024)
    #: GC planning scan: refcount/tombstone bookkeeping over resident
    #: metadata, ~1 GB/s — cheaper than any content work.
    cpu_gc_scan_byte_s: float = 1.0 / (1024 * 1024 * 1024)
    #: Page compaction migration: memcpy-class moves with slot fixups,
    #: ~500 MB/s.
    cpu_compaction_byte_s: float = 1.0 / (500 * 1024 * 1024)
    #: Fixed request-handling overhead per client operation.
    request_overhead_s: float = 0.0002

    def disk_time(self, nbytes: int) -> float:
        """Service time of one disk request of ``nbytes``."""
        return self.disk_seek_s + nbytes * self.disk_byte_s

    def network_time(self, nbytes: int) -> float:
        """Transfer time of one message of ``nbytes``."""
        return self.network_rtt_s + nbytes * self.network_byte_s
