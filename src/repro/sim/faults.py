"""Deterministic fault injection for the simulated cluster.

dbDedup's correctness argument (§4.1, §4.4) is that every piece of the
lossy machinery degrades gracefully: dropped write-backs cost compression,
never data; a lost oplog shipment is resent; a crashed node replays its
log; a corrupt page is detected by checksum and repaired from a healthy
replica. This module turns those failure modes into a reusable, *seeded*
chaos layer so every test (and the CLI) can exercise them reproducibly.

A :class:`FaultPlan` is a seed plus a list of declarative fault rules:

* :class:`DropBatches` — replication batches fail delivery (every N-th
  message, or with probability p). The link's retry/backoff/resend path
  must absorb them.
* :class:`TransientIOErrors` — simulated disk requests raise
  :class:`TransientIOError`; the database retries with backoff.
* :class:`CorruptPageReads` — bytes flip in page reads with probability p.
  Transient flips are healed by the checksum-verify-and-reread path;
  ``sticky`` flips persist in storage, land the record in quarantine, and
  must be repaired from a peer replica (:meth:`Cluster.scrub`).
* :class:`CrashNode` — a node crashes after N oplog appends and (by
  default) restarts from its oplog, exercising recovery + index rebuild.

Every random decision comes from one ``random.Random(seed)``, so a plan's
``repr`` is enough to reproduce a failure exactly — CI uploads it as an
artifact when a chaos test fails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

#: Cap on retained event-log lines (plans on long runs stay bounded).
MAX_EVENTS = 2000


class TransientIOError(Exception):
    """A simulated disk request failed transiently; the caller may retry."""


class DeliveryFault(Exception):
    """A network transfer was lost in flight; the sender must resend."""


@dataclass(frozen=True)
class DropBatches:
    """Drop replication-batch deliveries.

    Attributes:
        every: drop every N-th message crossing the link (1-based count).
        probability: independently drop each message with this probability.
        limit: stop injecting after this many drops (None = unlimited).
    """

    every: int | None = None
    probability: float | None = None
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.every is None and self.probability is None:
            raise ValueError("DropBatches needs 'every' or 'probability'")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")


@dataclass(frozen=True)
class TransientIOErrors:
    """Raise :class:`TransientIOError` from disk requests with probability p.

    Attributes:
        probability: per-request failure probability.
        kinds: which request kinds fail ("read", "write").
        node: "primary", "secondary", or "any".
        limit: stop injecting after this many errors (None = unlimited).
    """

    probability: float = 0.01
    kinds: tuple[str, ...] = ("read", "write")
    node: str = "any"
    limit: int | None = None


@dataclass(frozen=True)
class CorruptPageReads:
    """Flip bytes in record-payload reads with probability p.

    Attributes:
        probability: per-read corruption probability.
        sticky: when True the flipped bytes are written back to storage
            (latent sector corruption); detection then requires the
            checksum scrub + peer repair path. When False the corruption
            is transient and a re-read heals it.
        node: "primary", "secondary", or "any".
        limit: stop injecting after this many corruptions.
    """

    probability: float = 0.01
    sticky: bool = False
    node: str = "any"
    limit: int | None = None


@dataclass(frozen=True)
class CrashNode:
    """Crash a node once its oplog reaches ``after_appends`` entries.

    Attributes:
        node: "primary", "secondary" (the first replica), or
            "secondary:N" to address the N-th replica of a multi-replica
            set (0-based). A rule addressing a replica index the cluster
            does not have stays pending and never fires.
        after_appends: absolute oplog sequence that triggers the crash.
        restart: when True (default) the node immediately restarts from
            its oplog (crash-recover); when False it stays down until
            failover promotes a replacement or the test restarts it
            explicitly.
    """

    node: str = "primary"
    after_appends: int = 100
    restart: bool = True

    def __post_init__(self) -> None:
        if self.node not in ("primary", "secondary"):
            head, sep, tail = self.node.partition(":")
            if head != "secondary" or not sep or not tail.isdigit():
                raise ValueError(
                    "node must be primary|secondary|secondary:N, "
                    f"got {self.node!r}"
                )
        if self.after_appends < 1:
            raise ValueError(
                f"after_appends must be >= 1, got {self.after_appends}"
            )


FaultRule = DropBatches | TransientIOErrors | CorruptPageReads | CrashNode


class FaultPlan:
    """A seeded schedule of faults, installable on a cluster.

    Usage::

        plan = FaultPlan(seed=7, rules=[DropBatches(every=3)])
        plan.install(cluster)
        cluster.run(trace)
        check_cluster(cluster)   # suspends the plan while checking

    The plan wires itself into the cluster's network, every node's disk
    and database, and the cluster's per-operation hook (for crash rules).
    ``repr(plan)`` reconstructs the plan exactly (same seed, same rules),
    which is what chaos CI uploads on failure.
    """

    def __init__(self, seed: int = 0, rules: Sequence[FaultRule] = ()) -> None:
        self.seed = seed
        self.rules = tuple(rules)
        self.rng = random.Random(seed)
        self.active = True
        self.events: list[str] = []
        self.injected = 0
        self._counts: dict[int, int] = {}
        self._crashed_rules: set[int] = set()

    def __repr__(self) -> str:
        rules = ", ".join(repr(rule) for rule in self.rules)
        return f"FaultPlan(seed={self.seed}, rules=[{rules}])"

    # -- lifecycle ---------------------------------------------------------

    def install(self, cluster) -> None:
        """Wire the plan into a cluster's fault hooks."""
        cluster.fault_plan = self
        cluster.network.interceptor = self.on_transfer
        for node in [cluster.primary, *cluster.secondaries]:
            node.db.fault_injector = self
            node.db.disk.interceptor = self._disk_interceptor(node.db)

    def uninstall(self, cluster) -> None:
        """Remove the plan's hooks from a cluster."""
        if getattr(cluster, "fault_plan", None) is self:
            cluster.fault_plan = None
        if cluster.network.interceptor == self.on_transfer:
            cluster.network.interceptor = None
        for node in [cluster.primary, *cluster.secondaries]:
            if node.db.fault_injector is self:
                node.db.fault_injector = None
                node.db.disk.interceptor = None

    def suspend(self) -> bool:
        """Stop injecting (hooks stay installed); returns the prior state."""
        was_active, self.active = self.active, False
        return was_active

    def resume(self) -> None:
        """Start injecting again after :meth:`suspend`."""
        self.active = True

    # -- bookkeeping -------------------------------------------------------

    def _spent(self, rule_index: int, limit: int | None) -> bool:
        """True when a rule's injection budget is exhausted."""
        return limit is not None and self._counts.get(rule_index, 0) >= limit

    def _note(self, rule_index: int, message: str) -> None:
        self._counts[rule_index] = self._counts.get(rule_index, 0) + 1
        self.injected += 1
        if len(self.events) < MAX_EVENTS:
            self.events.append(message)

    # -- injection hooks ---------------------------------------------------

    def on_transfer(self, message_index: int, nbytes: int) -> None:
        """Network hook: may raise :class:`DeliveryFault` to drop a message."""
        if not self.active:
            return
        for rule_index, rule in enumerate(self.rules):
            if not isinstance(rule, DropBatches):
                continue
            if self._spent(rule_index, rule.limit):
                continue
            hit = False
            if rule.every is not None and message_index % rule.every == 0:
                hit = True
            if rule.probability is not None and self.rng.random() < rule.probability:
                hit = True
            if hit:
                self._note(
                    rule_index,
                    f"drop message={message_index} bytes={nbytes} rule={rule!r}",
                )
                raise DeliveryFault(
                    f"batch delivery dropped (message {message_index})"
                )

    def _disk_interceptor(self, db):
        """Per-database disk hook: may raise :class:`TransientIOError`."""

        def interceptor(kind: str, nbytes: int) -> None:
            if not self.active:
                return
            role = getattr(db, "node_role", "node")
            for rule_index, rule in enumerate(self.rules):
                if not isinstance(rule, TransientIOErrors):
                    continue
                if rule.node != "any" and rule.node != role:
                    continue
                if kind not in rule.kinds or self._spent(rule_index, rule.limit):
                    continue
                if self.rng.random() < rule.probability:
                    self._note(
                        rule_index,
                        f"io-error node={role} kind={kind} bytes={nbytes}",
                    )
                    raise TransientIOError(f"transient {kind} error ({role})")

        return interceptor

    def on_page_read(self, db, record, payload: bytes) -> bytes:
        """Database hook: return the (possibly corrupted) bytes of a read.

        Sticky corruption also rewrites the stored payload, so the
        checksum mismatch persists until the record is repaired.
        """
        if not self.active or not payload:
            return payload
        role = getattr(db, "node_role", "node")
        for rule_index, rule in enumerate(self.rules):
            if not isinstance(rule, CorruptPageReads):
                continue
            if rule.node != "any" and rule.node != role:
                continue
            if self._spent(rule_index, rule.limit):
                continue
            if self.rng.random() >= rule.probability:
                continue
            corrupted = bytearray(payload)
            for _ in range(self.rng.randint(1, 3)):
                position = self.rng.randrange(len(corrupted))
                corrupted[position] ^= 1 + self.rng.randrange(255)
            corrupted_bytes = bytes(corrupted)
            self._note(
                rule_index,
                f"corrupt node={role} record={record.record_id} "
                f"sticky={rule.sticky}",
            )
            if rule.sticky:
                record.payload = corrupted_bytes
            return corrupted_bytes
        return payload

    @staticmethod
    def _crash_target(cluster, spec: str):
        """Resolve a :class:`CrashNode` address against a cluster.

        ``"primary"`` is whichever node currently holds the role (after a
        failover that is the promoted node); ``"secondary"`` /
        ``"secondary:N"`` index into the current replica list, which
        shrinks while a promoted node's old peer awaits rejoin — an
        out-of-range index resolves to None and the rule stays pending.
        """
        if spec == "primary":
            return cluster.primary
        _, _, tail = spec.partition(":")
        index = int(tail) if tail else 0
        if index >= len(cluster.secondaries):
            return None
        return cluster.secondaries[index]

    def after_operation(self, cluster) -> None:
        """Cluster hook: fire pending crash rules after a client op."""
        if not self.active:
            return
        for rule_index, rule in enumerate(self.rules):
            if not isinstance(rule, CrashNode):
                continue
            if rule_index in self._crashed_rules:
                continue
            node = self._crash_target(cluster, rule.node)
            if node is None or not getattr(node, "is_available", True):
                continue
            if node.oplog.next_seq < rule.after_appends:
                continue
            self._crashed_rules.add(rule_index)
            self._note(
                rule_index,
                f"crash node={rule.node} at seq={node.oplog.next_seq} "
                f"restart={rule.restart}",
            )
            node.crash()
            if rule.restart:
                node.restart()
