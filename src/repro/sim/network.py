"""Simulated replication link: byte accounting plus transfer latency.

Fig. 11's network-compression numbers come straight from this component's
byte counters — the bytes that would have crossed the wire, with and
without forward-encoded oplog entries.
"""

from __future__ import annotations

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel


class SimNetwork:
    """Point-to-point link between primary and secondary."""

    def __init__(self, clock: SimClock, costs: CostModel | None = None) -> None:
        self.clock = clock
        self.costs = costs if costs is not None else CostModel()
        self.messages = 0
        self.bytes_sent = 0

    def transfer(self, nbytes: int) -> float:
        """Account one message; returns its simulated transfer time."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        self.messages += 1
        self.bytes_sent += nbytes
        return self.costs.network_time(nbytes)
