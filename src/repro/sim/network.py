"""Simulated replication link: byte accounting plus transfer latency.

Fig. 11's network-compression numbers come straight from this component's
byte counters — the bytes that would have crossed the wire, with and
without forward-encoded oplog entries. Attempted and delivered traffic
are counted separately: a batch dropped by fault injection consumes
``bytes_sent`` (the sender paid for it) but not ``bytes_delivered`` (the
receiver never saw it), and the figure accounting reads the latter so
retried batches are not double-counted.
"""

from __future__ import annotations

from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel


class SimNetwork:
    """Point-to-point link between primary and secondary."""

    def __init__(self, clock: SimClock, costs: CostModel | None = None) -> None:
        self.clock = clock
        self.costs = costs if costs is not None else CostModel()
        #: Tracer the link attributes ``network_s`` cost to (the cluster
        #: swaps in its shared tracer; standalone links stay untraced).
        self.tracer: Tracer = NULL_TRACER
        #: Transfer attempts (including ones that failed delivery).
        self.messages = 0
        #: Bytes of all transfer attempts.
        self.bytes_sent = 0
        #: Successfully delivered messages / bytes.
        self.messages_delivered = 0
        self.bytes_delivered = 0
        #: Messages lost to fault injection.
        self.messages_dropped = 0
        #: Optional fault hook ``(message_index, nbytes) -> None``; may
        #: raise :class:`repro.sim.faults.DeliveryFault` to drop the
        #: message (see :class:`repro.sim.faults.FaultPlan`).
        self.interceptor = None

    def transfer(self, nbytes: int) -> float:
        """Attempt one message; returns its simulated transfer time.

        Raises:
            DeliveryFault: when an installed fault interceptor drops the
                message. The bytes still count as sent — the sender spent
                the bandwidth — but not as delivered.
        """
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        self.messages += 1
        self.bytes_sent += nbytes
        if self.interceptor is not None:
            try:
                self.interceptor(self.messages, nbytes)
            except Exception:
                self.messages_dropped += 1
                raise
        self.messages_delivered += 1
        self.bytes_delivered += nbytes
        seconds = self.costs.network_time(nbytes)
        self.tracer.add_cost("network_s", seconds)
        return seconds
