"""Simulated wall clock shared by every component of one node/cluster."""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in seconds.

    All simulated components hold a reference to one clock; the workload
    driver advances it as operations consume simulated resources.
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time.

        Raises:
            ValueError: on negative increments — simulated time is monotonic.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}s")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time, never moving backwards."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now
