"""Encoding-chain analysis of a live database.

After a run, the base-pointer graph tells the whole storage story: how
long chains grew, how many records are raw, what decoding any record would
cost. Used by the ablation benches and handy for operators tuning hop
distance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.db.record import RecordForm
from repro.encoding.analysis import measured_decode_costs
from repro.util.stats import percentile


@dataclass
class ChainProfile:
    """Shape of a database's encoding graph."""

    records: int
    raw_records: int
    delta_records: int
    chains: int  # number of raw roots (every chain decodes to one)
    mean_decode_cost: float
    p90_decode_cost: float
    worst_decode_cost: int
    stored_bytes: int
    raw_bytes_stored: int  # bytes held by records stored unencoded

    @property
    def raw_fraction(self) -> float:
        """Fraction of records stored unencoded."""
        return self.raw_records / self.records if self.records else 0.0

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return (
            f"records={self.records} raw={self.raw_records} "
            f"delta={self.delta_records} chains={self.chains} "
            f"decode mean={self.mean_decode_cost:.1f} "
            f"p90={self.p90_decode_cost:.0f} worst={self.worst_decode_cost} "
            f"raw-bytes={self.raw_bytes_stored}"
        )


def profile_chains(db: Database) -> ChainProfile:
    """Profile the base-pointer graph of a database.

    Raises:
        ValueError: if the database is empty or its graph has a cycle
            (which would indicate corruption).
    """
    if not db.records:
        raise ValueError("cannot profile an empty database")
    base_pointers = {
        record_id: record.base_id if record.form is RecordForm.DELTA else None
        for record_id, record in db.records.items()
    }
    costs = measured_decode_costs(base_pointers)
    cost_values = [float(value) for value in costs.values()]
    raw_records = [
        record for record in db.records.values() if record.form is RecordForm.RAW
    ]
    return ChainProfile(
        records=len(db.records),
        raw_records=len(raw_records),
        delta_records=len(db.records) - len(raw_records),
        chains=len(raw_records),
        mean_decode_cost=sum(cost_values) / len(cost_values),
        p90_decode_cost=percentile(cost_values, 90),
        worst_decode_cost=int(max(cost_values)),
        stored_bytes=db.stored_bytes,
        raw_bytes_stored=sum(record.stored_size for record in raw_records),
    )
