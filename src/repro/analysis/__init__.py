"""Corpus and chain analysis tooling."""

from repro.analysis.corpus import CorpusProfile, profile_corpus
from repro.analysis.chains import ChainProfile, profile_chains

__all__ = ["CorpusProfile", "profile_corpus", "ChainProfile", "profile_chains"]
