"""Corpus characterization — the §5.1-style dataset summary.

Answers, for any record stream, the questions the paper answers about its
datasets before evaluating: how big are records, how much intrinsic
redundancy is there at a given chunk size, and how much of it is
*cross-record* (reachable by dedup) versus *intra-record* (reachable by
block compression).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.chunking.cdc import ContentDefinedChunker
from repro.index.exact import ExactChunkIndex
from repro.util.stats import RunningStats, percentile


@dataclass
class CorpusProfile:
    """Summary statistics of one record corpus."""

    records: int
    total_bytes: int
    mean_record_bytes: float
    median_record_bytes: float
    p90_record_bytes: float
    max_record_bytes: int
    #: Fraction of chunks that duplicate an earlier chunk of a *different*
    #: record — the redundancy similarity dedup can reach.
    cross_record_duplication: float
    #: Fraction of chunks duplicating an earlier chunk of the same record.
    intra_record_duplication: float

    def render(self) -> str:
        """Render this result as an aligned text table/summary."""
        return (
            f"records={self.records} total={self.total_bytes / 1e6:.2f}MB "
            f"mean={self.mean_record_bytes:.0f}B median={self.median_record_bytes:.0f}B "
            f"p90={self.p90_record_bytes:.0f}B max={self.max_record_bytes}B "
            f"cross-dup={self.cross_record_duplication * 100:.1f}% "
            f"intra-dup={self.intra_record_duplication * 100:.1f}%"
        )


def profile_corpus(
    contents: Iterable[bytes], chunk_size: int = 64
) -> CorpusProfile:
    """Profile a record stream at the given analysis chunk size."""
    chunker = ContentDefinedChunker(avg_size=chunk_size)
    global_index = ExactChunkIndex()
    sizes: list[float] = []
    stats = RunningStats()
    total = 0
    cross = 0
    intra = 0
    chunks_seen = 0
    for content in contents:
        sizes.append(float(len(content)))
        stats.add(float(len(content)))
        total += len(content)
        local_seen: set[bytes] = set()
        for chunk in chunker.chunks(content):
            chunks_seen += 1
            digest = global_index.digest(chunk.data)
            if digest in local_seen:
                intra += 1
                continue
            if global_index.observe(chunk.data):
                cross += 1
            local_seen.add(digest)
    if not sizes:
        raise ValueError("cannot profile an empty corpus")
    return CorpusProfile(
        records=len(sizes),
        total_bytes=total,
        mean_record_bytes=stats.mean,
        median_record_bytes=percentile(sizes, 50),
        p90_record_bytes=percentile(sizes, 90),
        max_record_bytes=int(stats.maximum),
        cross_record_duplication=cross / chunks_seen if chunks_seen else 0.0,
        intra_record_duplication=intra / chunks_seen if chunks_seen else 0.0,
    )
