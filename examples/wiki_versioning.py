#!/usr/bin/env python3
"""Wiki-style versioning: compare storage configurations end to end.

Runs the same synthetic Wikipedia corpus under four deployments —
no compression, Snappy block compression, dbDedup, and dbDedup+Snappy —
and prints the Fig. 1-style comparison, then demonstrates why hop encoding
matters by reading an old revision under each encoding scheme.

Run:  python examples/wiki_versioning.py
"""

from itertools import islice

from repro import ClusterSpec, DedupConfig, WikipediaWorkload, open_cluster
from repro.bench.report import render_table

TARGET_BYTES = 800_000
SEED = 17


def run_configuration(label: str, spec: ClusterSpec):
    client = open_cluster(spec)
    workload = WikipediaWorkload(seed=SEED, target_bytes=TARGET_BYTES)
    result = client.run(workload.insert_trace())
    return (
        label,
        result.storage_compression_ratio,
        result.physical_compression_ratio,
        result.network_compression_ratio,
        result.index_memory_bytes / 1024.0,
    )


def compare_configurations() -> None:
    rows = [
        run_configuration("original", ClusterSpec(dedup_enabled=False)),
        run_configuration(
            "snappy", ClusterSpec(dedup_enabled=False, block_compression="snappy")
        ),
        run_configuration(
            "dbDedup", ClusterSpec(dedup=DedupConfig(chunk_size=64))
        ),
        run_configuration(
            "dbDedup+snappy",
            ClusterSpec(
                dedup=DedupConfig(chunk_size=64), block_compression="snappy"
            ),
        ),
    ]
    print(
        render_table(
            f"Wikipedia corpus ({TARGET_BYTES // 1000} kB raw): storage configurations",
            ["config", "dedup ratio", "physical ratio", "network ratio", "index KB"],
            rows,
        )
    )


def compare_encodings() -> None:
    print()
    rows = []
    for encoding in ("backward", "version-jumping", "hop"):
        spec = ClusterSpec(
            dedup=DedupConfig(
                chunk_size=64, encoding=encoding, hop_distance=8,
                size_filter_enabled=False,
            )
        )
        client = open_cluster(spec)
        workload = WikipediaWorkload(
            seed=SEED, target_bytes=10**9, num_articles=1, median_article_bytes=3000
        )
        client.run(islice(workload.insert_trace(), 60))
        db = client.cluster.primary.db
        oldest = "wiki/0/0"
        rows.append(
            (
                encoding,
                db.logical_raw_bytes / db.stored_bytes,
                db.decode_cost(oldest),
                max(db.decode_cost(r) for r in db.records),
            )
        )
    print(
        render_table(
            "One 60-revision chain: encoding schemes (H=8)",
            ["encoding", "compression", "decode steps (oldest)", "worst decode"],
            rows,
        )
    )


if __name__ == "__main__":
    compare_configurations()
    compare_encodings()
