#!/usr/bin/env python3
"""Replication-bandwidth savings on an email workload.

Email is the paper's inclusion-duplication case: replies and forwards embed
the previous message's body. This example runs the Enron-style workload
with and without dbDedup and reports the bytes that crossed the replication
link, then verifies the two replicas converged to identical contents.

Run:  python examples/email_replication.py
"""

from repro import ClusterSpec, DedupConfig, EnronWorkload, open_cluster
from repro.bench.report import render_table

TARGET_BYTES = 600_000
SEED = 23


def run(dedup_enabled: bool):
    spec = ClusterSpec(
        dedup=DedupConfig(chunk_size=64),
        dedup_enabled=dedup_enabled,
    )
    client = open_cluster(spec)
    workload = EnronWorkload(seed=SEED, target_bytes=TARGET_BYTES)
    result = client.run(workload.mixed_trace())
    return client, result


def main() -> None:
    baseline_client, baseline = run(dedup_enabled=False)
    dedup_client, deduped = run(dedup_enabled=True)

    print(
        render_table(
            "Enron-style email corpus: replication traffic",
            ["config", "messages", "raw MB", "replicated MB", "network ratio"],
            [
                (
                    "original",
                    baseline.inserts,
                    baseline.logical_bytes / 1e6,
                    baseline.network_bytes / 1e6,
                    baseline.network_compression_ratio,
                ),
                (
                    "dbDedup",
                    deduped.inserts,
                    deduped.logical_bytes / 1e6,
                    deduped.network_bytes / 1e6,
                    deduped.network_compression_ratio,
                ),
            ],
        )
    )

    saved = baseline.network_bytes - deduped.network_bytes
    print(f"\nbandwidth saved: {saved / 1e6:.2f} MB "
          f"({saved / baseline.network_bytes * 100:.0f}% of baseline)")
    print(f"secondary converged: {dedup_client.replicas_converged()}")

    stats = dedup_client.cluster.primary.engine.stats
    print(f"dedup hit rate: {stats.dedup_hit_ratio * 100:.0f}% of messages "
          f"found a similar prior message")
    print(f"source-cache miss ratio: {stats.source_cache_miss_ratio * 100:.1f}%")


if __name__ == "__main__":
    main()
