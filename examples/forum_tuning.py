#!/usr/bin/env python3
"""Tuning dbDedup on a marginal workload — and watching it police itself.

Forum posts dedup far less than wikis (paper: 1.3-1.8x). This example
sweeps the two main knobs (chunk size, anchor interval) on the message-
board workload, then demonstrates the two §3.4 self-governing mechanisms:

* the adaptive size filter skipping small posts, and
* the governor disabling dedup outright on a database with no redundancy.

Run:  python examples/forum_tuning.py
"""

import random

from repro import ClusterSpec, DedupConfig, MessageBoardsWorkload, open_cluster
from repro.bench.report import render_table

TARGET_BYTES = 500_000
SEED = 31


def sweep_knobs() -> None:
    rows = []
    for chunk_size in (1024, 256, 64):
        for anchor_interval in (64, 16):
            spec = ClusterSpec(
                dedup=DedupConfig(
                    chunk_size=chunk_size, anchor_interval=anchor_interval
                )
            )
            client = open_cluster(spec)
            workload = MessageBoardsWorkload(seed=SEED, target_bytes=TARGET_BYTES)
            result = client.run(workload.insert_trace())
            rows.append(
                (
                    f"chunk={chunk_size}",
                    f"anchor={anchor_interval}",
                    result.storage_compression_ratio,
                    result.network_compression_ratio,
                    result.index_memory_bytes / 1024.0,
                )
            )
    print(
        render_table(
            "Message boards: chunk size x anchor interval",
            ["chunk", "anchor", "storage ratio", "network ratio", "index KB"],
            rows,
        )
    )


def show_size_filter() -> None:
    client = open_cluster(
        ClusterSpec(dedup=DedupConfig(chunk_size=64, size_filter_interval=200))
    )
    workload = MessageBoardsWorkload(seed=SEED, target_bytes=TARGET_BYTES)
    client.run(workload.insert_trace())
    engine = client.cluster.primary.engine
    print()
    print(
        f"size filter: learned cut-off "
        f"{engine.size_filter.threshold('messageboards')} B, "
        f"skipped {engine.stats.records_filtered} of "
        f"{engine.stats.records_seen} posts"
    )


def show_governor() -> None:
    # A database of pure random blobs: no redundancy whatsoever.
    client = open_cluster(
        ClusterSpec(dedup=DedupConfig(chunk_size=64, governor_window=200))
    )
    rng = random.Random(SEED)
    for index in range(260):
        blob = bytes(rng.randrange(256) for _ in range(1500))
        client.insert("blobstore", f"blob/{index}", blob)
    engine = client.cluster.primary.engine
    print()
    print(
        f"governor: dedup enabled for 'blobstore' after 260 inserts? "
        f"{engine.governor.is_enabled('blobstore')} "
        f"(bypassed {engine.stats.records_bypassed} records after disabling)"
    )


if __name__ == "__main__":
    sweep_knobs()
    show_size_filter()
    show_governor()
