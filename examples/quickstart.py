#!/usr/bin/env python3
"""Quickstart: deduplicating versioned records through the public API.

Opens a one-primary/one-secondary deployment with dbDedup enabled via
``repro.api`` (the supported entry point), inserts a handful of document
revisions through the :class:`~repro.api.DedupClient` facade, and shows
what the engine did: forward-encoded oplog entries on the wire,
backward-encoded records on disk, and the newest version still readable
with zero decode steps.

Run:  python examples/quickstart.py
"""

import random

from repro import ClusterSpec, DedupConfig, open_cluster
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator


def main() -> None:
    client = open_cluster(
        ClusterSpec(
            dedup=DedupConfig(chunk_size=64, size_filter_enabled=False),
            block_compression="snappy",
        )
    )

    # Ten revisions of one document, like an application-level version
    # history (a wiki page, a collaboratively edited doc, ...).
    rng = random.Random(7)
    text_gen = TextGenerator(seed=7)
    body = text_gen.document(6000)
    for version in range(10):
        client.insert("demo", f"doc/{version}", body.encode())
        body = revise(rng, text_gen, body)

    # Let the write-back cache drain so old versions are delta-encoded.
    client.finalize()

    # Read every version back (old ones decode through their delta chain).
    cluster = client.cluster  # peek under the facade for decode costs
    for version in range(10):
        record_id = f"doc/{version}"
        steps = cluster.primary.db.decode_cost(record_id)
        content = client.read("demo", record_id)
        assert content is not None
        print(f"{record_id}: {len(content):6d} B, decode steps {steps}")

    stats = client.stats()
    print()
    print(f"raw corpus:            {stats['logical_bytes']:8d} B")
    print(f"stored after dedup:    {stats['stored_bytes']:8d} B "
          f"({stats['storage_compression_ratio']:.1f}x)")
    print(f"stored after + snappy: {stats['physical_bytes']:8d} B "
          f"({stats['logical_bytes'] / stats['physical_bytes']:.1f}x)")
    print(f"replicated bytes:      {stats['network_bytes']:8d} B "
          f"({stats['network_compression_ratio']:.1f}x)")
    print(f"replicas converged:    {client.replicas_converged()}")
    print(f"latest version reads with "
          f"{cluster.primary.db.decode_cost('doc/9')} decode steps")


if __name__ == "__main__":
    main()
