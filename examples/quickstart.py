#!/usr/bin/env python3
"""Quickstart: deduplicating versioned records in a replicated database.

Builds a one-primary/one-secondary cluster with dbDedup enabled, inserts a
handful of document revisions, and shows what the engine did: forward-
encoded oplog entries on the wire, backward-encoded records on disk, and
the newest version still readable with zero decode steps.

Run:  python examples/quickstart.py
"""

import random

from repro import Cluster, ClusterConfig, DedupConfig, Operation
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator


def main() -> None:
    cluster = Cluster(
        ClusterConfig(
            dedup=DedupConfig(chunk_size=64, size_filter_enabled=False),
            block_compression="snappy",
        )
    )

    # Ten revisions of one document, like an application-level version
    # history (a wiki page, a collaboratively edited doc, ...).
    rng = random.Random(7)
    text_gen = TextGenerator(seed=7)
    body = text_gen.document(6000)
    for version in range(10):
        cluster.execute(
            Operation(
                kind="insert",
                database="demo",
                record_id=f"doc/{version}",
                content=body.encode(),
            )
        )
        body = revise(rng, text_gen, body)

    # Let the write-back cache drain so old versions are delta-encoded.
    cluster.finalize()

    # Read every version back (old ones decode through their delta chain).
    for version in range(10):
        record_id = f"doc/{version}"
        steps = cluster.primary.db.decode_cost(record_id)
        content, latency = cluster.primary.read("demo", record_id)
        cluster.clock.advance(latency)
        assert content is not None
        print(
            f"{record_id}: {len(content):6d} B, decode steps {steps}, "
            f"read latency {latency * 1e3:.2f} ms"
        )
    db = cluster.primary.db
    stats = cluster.primary.engine.stats
    print()
    print(f"raw corpus:            {db.logical_raw_bytes:8d} B")
    print(f"stored after dedup:    {db.stored_bytes:8d} B "
          f"({db.logical_raw_bytes / db.stored_bytes:.1f}x)")
    print(f"stored after + snappy: {db.physical_bytes():8d} B "
          f"({db.logical_raw_bytes / db.physical_bytes():.1f}x)")
    print(f"replicated bytes:      {cluster.network.bytes_sent:8d} B "
          f"({stats.bytes_in / cluster.network.bytes_sent:.1f}x)")
    print(f"replicas converged:    {cluster.replicas_converged()}")
    print(f"latest version reads with "
          f"{cluster.primary.db.decode_cost('doc/9')} decode steps")


if __name__ == "__main__":
    main()
