#!/usr/bin/env python3
"""Durability tour: snapshots, oplog replay, and multi-replica fan-out.

1. Load a wiki corpus into a 1-primary / 2-secondary cluster.
2. Snapshot the primary's (delta-encoded) store to a file and restore it —
   byte-identical, including encoding chains.
3. Simulate a total data loss and rebuild the node from its oplog alone.

Run:  python examples/disaster_recovery.py
"""

import tempfile
from pathlib import Path

from repro import ClusterSpec, DedupConfig, WikipediaWorkload, open_cluster
from repro.db.recovery import replay_oplog
from repro.db.snapshot import load_snapshot, save_snapshot


def main() -> None:
    client = open_cluster(
        ClusterSpec(dedup=DedupConfig(chunk_size=64), num_secondaries=2)
    )
    workload = WikipediaWorkload(seed=42, target_bytes=400_000)
    ops = list(workload.insert_trace())
    for op in ops:
        client.insert(op.database, op.record_id, op.content)
    client.finalize()
    cluster = client.cluster
    primary_db = cluster.primary.db

    print(f"loaded {len(ops)} records "
          f"({primary_db.logical_raw_bytes / 1e6:.2f} MB raw, "
          f"{primary_db.stored_bytes / 1e6:.2f} MB stored)")
    print(f"secondaries in sync: {client.replicas_converged()} "
          f"(x{len(cluster.secondaries)})")

    # --- snapshot & restore -------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "primary.snapshot"
        size = save_snapshot(primary_db, path)
        restored = load_snapshot(path)
        checked = sum(
            1 for op in ops
            if restored.read(op.database, op.record_id)[0] == op.content
        )
        print(f"\nsnapshot: {size / 1e6:.2f} MB on disk "
              f"({primary_db.logical_raw_bytes / size:.1f}x smaller than raw)")
        print(f"restore verified: {checked}/{len(ops)} records byte-identical")
        print(f"encoded forms preserved: "
              f"{sum(1 for r in restored.records.values() if not r.is_raw)} "
              f"delta records restored as deltas")

    # --- oplog replay after total data loss ---------------------------------
    recovered, report = replay_oplog(cluster.primary.oplog.entries())
    checked = sum(
        1 for op in ops
        if recovered.read(op.database, op.record_id)[0] == op.content
    )
    print(f"\noplog replay: {report.applied} entries applied, "
          f"{report.decode_failures} decode failures")
    print(f"recovery verified: {checked}/{len(ops)} records byte-identical")
    print("(replayed records start raw; background write-backs would "
          "re-compress them over time)")


if __name__ == "__main__":
    main()
