#!/usr/bin/env python3
"""Bringing your own workload: implement, profile, then measure.

Shows the full downstream-user loop for a dataset the library does not
ship: (1) subclass `Workload` for a log-shipping corpus whose records are
configuration snapshots (mostly identical, few lines drift per snapshot),
(2) profile its redundancy with `repro.analysis` to predict whether dedup
will pay, (3) run it through the cluster and compare prediction with
outcome, and (4) save the trace for reproducible re-runs.

Run:  python examples/custom_workload.py
"""

import random
import tempfile
from collections.abc import Iterator
from pathlib import Path

from repro import ClusterSpec, DedupConfig, Operation, open_cluster
from repro.analysis import profile_corpus
from repro.workloads.base import Workload
from repro.workloads.trace_io import load_trace_file, save_trace


class ConfigSnapshotWorkload(Workload):
    """Periodic dumps of a service's configuration.

    Classic ops pattern: a cron job inserts the full rendered config of
    every service each hour. Configs drift a handful of lines at a time,
    so consecutive snapshots of one service are near-duplicates — prime
    dedup material the DBMS cannot see on its own.
    """

    name = "config-snapshots"

    def __init__(self, seed: int = 1, target_bytes: int = 400_000,
                 num_services: int = 4) -> None:
        super().__init__(seed=seed, target_bytes=target_bytes)
        self.num_services = num_services

    def _initial_config(self, rng: random.Random, service: int) -> list[str]:
        lines = [f"# service-{service} configuration"]
        for key in range(80):
            lines.append(
                f"option_{key} = {rng.choice(['on', 'off', rng.randint(0, 9999)])}"
            )
        return lines

    def insert_trace(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        configs = {
            service: self._initial_config(rng, service)
            for service in range(self.num_services)
        }
        produced = 0
        snapshot = 0
        while produced < self.target_bytes:
            service = snapshot % self.num_services
            lines = configs[service]
            # Drift: a couple of options change per snapshot.
            for _ in range(rng.randint(1, 3)):
                index = rng.randrange(1, len(lines))
                key = lines[index].split(" = ")[0]
                lines[index] = f"{key} = {rng.randint(0, 9999)}"
            content = "\n".join(lines).encode()
            produced += len(content)
            yield Operation(
                kind="insert",
                database=self.name,
                record_id=f"cfg/{service}/{snapshot // self.num_services}",
                content=content,
            )
            snapshot += 1

    def mixed_trace(self) -> Iterator[Operation]:
        # Ops dashboards read the latest snapshot after every insert.
        for op in self.insert_trace():
            yield op
            yield Operation(kind="read", database=self.name,
                            record_id=op.record_id)


def main() -> None:
    workload = ConfigSnapshotWorkload(seed=11, target_bytes=400_000)

    # 1. Profile before committing to dedup.
    contents = [op.content for op in workload.insert_trace()]
    profile = profile_corpus(contents, chunk_size=64)
    print("corpus profile:", profile.render())
    print(f"prediction: cross-record duplication of "
          f"{profile.cross_record_duplication * 100:.0f}% -> dedup should win\n")

    # 2. Measure.
    client = open_cluster(ClusterSpec(dedup=DedupConfig(chunk_size=64)))
    result = client.run(workload.insert_trace())
    print(f"measured: storage {result.storage_compression_ratio:.1f}x, "
          f"network {result.network_compression_ratio:.1f}x, "
          f"index {result.index_memory_bytes / 1024:.1f} KB")
    print(client.cluster.primary.engine.describe())

    # 3. Persist the exact trace for the next benchmarking session.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "config.trace"
        size = save_trace(workload.insert_trace(), path)
        replayed = open_cluster(
            ClusterSpec(dedup=DedupConfig(chunk_size=64))
        ).run(load_trace_file(path))
        print(f"\ntrace file: {size / 1e6:.2f} MB; replayed run matches: "
              f"{replayed.stored_bytes == result.stored_bytes}")


if __name__ == "__main__":
    main()
