"""Fig. 10 — compression ratio and index memory across all four datasets.

Paper shapes per subplot: dbDedup > trad-dedup at equal chunk size;
dbDedup's index stays flat as chunks shrink while trad-dedup's explodes;
Snappy's 1.6-2.3x composes with dedup; Wikipedia ≫ Enron > forums in
absolute ratio.
"""

import pytest

from repro.bench.experiments import fig10

TARGET = 1_000_000


@pytest.mark.parametrize(
    "workload", ["wikipedia", "enron", "stackexchange", "messageboards"]
)
def test_fig10_per_dataset(once, workload):
    result = once(fig10, workload, target_bytes=TARGET)
    print()
    print(result.render())

    db_64 = result.row("dbDedup-64B")
    db_1k = result.row("dbDedup-1KB")
    trad_4k = result.row("trad-dedup-4KB")
    trad_64 = result.row("trad-dedup-64B")
    snappy = result.row("Snappy")

    # dbDedup achieves at least trad-dedup's ratio at far less memory.
    assert db_64.dedup_ratio >= trad_64.dedup_ratio * 0.9
    assert db_64.index_memory_bytes < trad_64.index_memory_bytes
    assert db_64.dedup_ratio > trad_4k.dedup_ratio

    # Index memory: dbDedup roughly flat across chunk sizes (≤ K per
    # record), trad-dedup grows by an order of magnitude.
    assert db_64.index_memory_bytes < db_1k.index_memory_bytes * 4 + 4096
    assert trad_64.index_memory_bytes > trad_4k.index_memory_bytes * 4

    # Block compression composes on top of dedup.
    assert db_64.combined_ratio > db_64.dedup_ratio
    assert snappy.combined_ratio > 1.2


def test_fig10_cross_dataset_ordering(once):
    def sweep():
        return {
            name: fig10(name, target_bytes=600_000).row("dbDedup-64B").dedup_ratio
            for name in ("wikipedia", "enron", "messageboards")
        }

    ratios = once(sweep)
    print()
    print("dbDedup-64B dedup ratios:", ratios)
    # Paper ordering: versioned wiki ≫ quoted email > forum quoting.
    assert ratios["wikipedia"] > ratios["enron"] > ratios["messageboards"]
    assert ratios["messageboards"] >= 1.0
