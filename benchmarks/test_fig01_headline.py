"""Fig. 1 — headline result: Wikipedia compression ratio and index memory.

Paper: dbDedup @1KB ≈ 26x (41x with Snappy), @64B ≈ 37x (61x) with ~tens of
MB of index; trad-dedup @4KB ≈ 2.3x, @64B ≈ 15x but with ~17x dbDedup's
index memory; Snappy alone ≈ 1.6x. Shapes asserted: the orderings and the
index-memory blow-up, not the absolute ratios (synthetic corpus, scaled
size).
"""

from repro.bench.experiments import fig01


def test_fig01_wikipedia_headline(once):
    result = once(fig01, target_bytes=1_200_000)
    print()
    print(result.render())

    db_1k = result.row("dbDedup-1KB")
    db_64 = result.row("dbDedup-64B")
    trad_4k = result.row("trad-dedup-4KB")
    trad_64 = result.row("trad-dedup-64B")
    snappy = result.row("Snappy")

    # dbDedup dominates trad-dedup at comparable (or less) index memory.
    assert db_64.dedup_ratio > trad_4k.dedup_ratio * 2
    assert db_64.dedup_ratio > trad_64.dedup_ratio
    assert db_64.index_memory_bytes < trad_64.index_memory_bytes / 3

    # Smaller chunks help dbDedup without blowing up its index.
    assert db_64.dedup_ratio > db_1k.dedup_ratio
    assert db_64.index_memory_bytes < db_1k.index_memory_bytes * 4

    # Smaller chunks help trad-dedup too, but the index explodes.
    assert trad_64.dedup_ratio > trad_4k.dedup_ratio
    assert trad_64.index_memory_bytes > trad_4k.index_memory_bytes * 5

    # Snappy is modest alone and composes with dedup.
    assert 1.2 < snappy.combined_ratio < 4.0
    assert db_64.combined_ratio > db_64.dedup_ratio * 1.2
