"""Regenerate benchmarks/baselines/chunking_microbench.json.

Measures both chunker lanes on the same corpus the microbench uses and
rewrites the committed baseline. Run from the repo root::

    PYTHONPATH=src python benchmarks/regen_chunking_baseline.py
"""

import json
import time
from pathlib import Path

from repro.chunking.cdc import ContentDefinedChunker
from repro.workloads.text import TextGenerator


def throughput_mb_s(chunker, data, repeat=5) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        chunker.boundaries(data)
        best = min(best, time.perf_counter() - t0)
    return len(data) / best / 1e6


def main() -> None:
    corpus = TextGenerator(seed=77).document(256 * 1024).encode()
    scalar = throughput_mb_s(
        ContentDefinedChunker(avg_size=64, impl="scalar"), corpus
    )
    vectorized = throughput_mb_s(
        ContentDefinedChunker(avg_size=64, impl="vectorized"), corpus
    )
    baseline = {
        "corpus_bytes": len(corpus),
        "avg_size": 64,
        "scalar_mb_s": round(scalar, 3),
        "vectorized_mb_s": round(vectorized, 3),
        "speedup": round(vectorized / scalar, 2),
    }
    path = Path(__file__).parent / "baselines" / "chunking_microbench.json"
    path.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(baseline, indent=2))


if __name__ == "__main__":
    main()
