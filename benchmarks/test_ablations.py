"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.bench.ablations import (
    compaction_ablation,
    encoding_sweep,
    network_stack_ablation,
    sketch_sweep,
    writeback_capacity_sweep,
)


def test_ablation_sketch_geometry(once):
    result = once(sketch_sweep, "wikipedia", target_bytes=700_000)
    print()
    print(result.render())

    # K=8 finds at least as many sources as K=2 at every chunk size.
    for chunk_size in (1024, 256, 64):
        wide = result.row(chunk_size, 8)
        narrow = result.row(chunk_size, 2)
        assert wide.dedup_hit_ratio >= narrow.dedup_hit_ratio - 0.02
    # Finer chunks (with full K) never lose to coarse ones on this
    # versioned workload.
    assert result.row(64, 8).compression_ratio >= result.row(1024, 8).compression_ratio * 0.9
    # Index memory stays bounded by K entries per record: within a small
    # constant across chunk sizes (unlike trad-dedup).
    assert result.row(64, 8).index_memory_bytes < result.row(1024, 8).index_memory_bytes * 4 + 4096


def test_ablation_encoding_schemes(once):
    result = once(encoding_sweep, target_bytes=500_000)
    print()
    print(result.render())

    for workload in ("wikipedia", "enron"):
        forward = result.row(workload, "forward")
        backward = result.row(workload, "backward")
        hop = result.row(workload, "hop")
        vjump = result.row(workload, "version-jumping")
        # Network-only dedup leaves storage raw.
        assert forward.storage_ratio < 1.1
        assert forward.worst_decode == 0
        # Storage encodings compress; hop keeps decode bounded. The
        # hop-vs-version-jumping margin is loose: at this miniature
        # scale (~11 revisions per chain) one sketch-driven chain fork
        # orphans a raw record and moves hop's ratio by whole points,
        # so the floor guards the scheme working at all, not the
        # paper's full-scale ~10% gap.
        assert backward.storage_ratio > forward.storage_ratio
        assert hop.storage_ratio > forward.storage_ratio * 2
        assert hop.storage_ratio > vjump.storage_ratio * 0.65
        assert hop.worst_decode <= backward.worst_decode
        # All modes compress the network stream identically (same forward
        # encoding underneath).
        assert abs(forward.network_ratio - backward.network_ratio) < forward.network_ratio * 0.25


def test_ablation_writeback_capacity(once):
    result = once(writeback_capacity_sweep, target_bytes=600_000)
    print()
    print(result.render())

    tiny, small, ample = result.rows
    # A tiny cache discards deltas; an ample one discards none.
    assert tiny.discarded >= small.discarded >= ample.discarded
    assert ample.discarded == 0
    # Lost savings translate into a worse (or equal) storage ratio.
    assert ample.storage_ratio >= tiny.storage_ratio


def test_ablation_background_compaction(once):
    # 40% of revisions derive from old versions: under the gear
    # chunker's sketches the milder 15% revert rate no longer produces
    # any Fig. 5 forks at this seed (source selection finds the true
    # predecessor), leaving the compactor nothing to demonstrate on.
    result = once(compaction_ablation, target_bytes=700_000,
                  incremental_fraction=0.6)
    print()
    print(result.render())

    # Fork-orphaned raw records get reclaimed; the ratio never regresses.
    assert result.ratio_after >= result.ratio_before
    assert result.raw_after <= result.raw_before
    if result.raw_before > 4:  # forks actually happened at this seed
        assert result.compacted > 0
        assert result.ratio_after > result.ratio_before


def test_ablation_network_stack(once):
    result = once(network_stack_ablation, target_bytes=600_000)
    print()
    print(result.render())

    original = result.row("original")
    batch = result.row("batch-snappy")
    dedup = result.row("dbDedup")
    both = result.row("dbDedup+batch-snappy")

    # Today's baseline: batch compression alone helps (a whole 256 KB
    # batch is one compression window, so it sees some cross-record
    # redundancy too) but far less than similarity dedup.
    assert original.network_ratio < 1.1
    assert 1.3 < batch.network_ratio < dedup.network_ratio
    # Forward encoding beats batch compression on versioned data, and the
    # two compose (§1: complementary reductions).
    assert dedup.network_ratio > batch.network_ratio
    assert both.network_ratio > dedup.network_ratio
