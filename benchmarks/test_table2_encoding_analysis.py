"""Table 2 — encoding-scheme cost model, checked against exact simulation.

The closed forms are the paper's "general notation"; this bench prints the
table and verifies each column's *ordering* against exact counts measured
from the policy implementations on a synthetic chain.
"""

from repro.bench.experiments import table2
from repro.encoding.analysis import measured_decode_costs
from repro.encoding.policies import (
    BackwardEncodingPolicy,
    HopEncodingPolicy,
    VersionJumpingPolicy,
)

N = 200
H = 16


def simulate_policy(policy, length):
    records = [f"R{i}" for i in range(length)]
    bases = {records[0]: None}
    writebacks = 0
    for position in range(1, length):
        bases[records[position]] = None
        for action in policy.plan_extend(records[: position + 1], position):
            bases[action.target_id] = action.base_id
            writebacks += 1
    worst = max(measured_decode_costs(bases).values())
    raw = sum(1 for base in bases.values() if base is None)
    return worst, writebacks, raw


def test_table2_formulas_vs_exact_simulation(once):
    result = once(table2, chain_length=N, hop_distance=H)
    print()
    print(result.render())

    backward_worst, backward_wb, backward_raw = simulate_policy(
        BackwardEncodingPolicy(), N
    )
    vjump_worst, vjump_wb, vjump_raw = simulate_policy(VersionJumpingPolicy(H), N)
    hop_worst, hop_wb, hop_raw = simulate_policy(HopEncodingPolicy(H), N)

    print(
        f"measured worst-case retrievals: backward={backward_worst} "
        f"vjump={vjump_worst} hop={hop_worst}"
    )
    print(
        f"measured writebacks: backward={backward_wb} vjump={vjump_wb} "
        f"hop={hop_wb}; raw records: {backward_raw}/{vjump_raw}/{hop_raw}"
    )

    # Storage column: backward and hop keep one raw record; version
    # jumping keeps N/H references (plus the tail when unaligned).
    assert backward_raw == 1
    assert hop_raw == 1
    assert vjump_raw >= N // H

    # Worst-case retrieval column: backward N-1; vjump ≤ H; hop bounded
    # well below backward, same order as vjump.
    assert backward_worst == N - 1
    assert vjump_worst <= H
    assert vjump_worst <= hop_worst < backward_worst / 3

    # Writeback column: vjump < backward < hop, and hop's overhead is the
    # small N·H/(H-1)^2-flavoured term.
    assert vjump_wb < backward_wb <= hop_wb
    assert hop_wb <= backward_wb * (1 + 2.0 * H / (H - 1) ** 2) + H

    # The closed forms agree in ordering with the exact counts.
    assert result.version_jumping.storage_bytes > result.hop.storage_bytes
    assert result.hop.worst_case_retrievals < result.backward.worst_case_retrievals
