"""Microbenchmark: batch insert path vs per-record inserts.

Guards the acceptance claim for the staged encode pipeline: the batch
path (``Database.insert_many`` → ``PrimaryNode.insert_batch`` →
``DedupEngine.encode_batch``) must not be slower than per-record inserts
on the same trace, and the amortized numpy sketching must cut the
per-record sketch cost on batches ≥ 64.

Timing assertions use generous margins — these catch a broken batch path
(e.g. quadratic re-preparation), not small scheduler noise.
"""

from __future__ import annotations

import time

import pytest

from repro.chunking.cdc import ContentDefinedChunker
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.sketch.features import SketchExtractor
from repro.workloads.text import TextGenerator
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def trace_factory():
    """A fresh copy of the same insert trace, on demand."""

    def build():
        workload = make_workload("wikipedia", seed=7, target_bytes=400_000)
        return workload.insert_trace()

    return build


def run_cluster(trace_factory, batch_size: int):
    """Drive one cluster over the trace; return (wall seconds, result)."""
    cluster = Cluster(
        ClusterConfig(
            dedup=DedupConfig(chunk_size=64),
            insert_batch_size=batch_size,
        )
    )
    began = time.perf_counter()
    result = cluster.run(trace_factory())
    return time.perf_counter() - began, result, cluster


def test_batch_insert_not_slower_than_per_record(once, trace_factory):
    per_record_wall, per_record_result, _ = run_cluster(trace_factory, 1)

    def batched():
        return run_cluster(trace_factory, 64)

    batched_wall, batched_result, cluster = once(batched)

    # Identical outcomes: the batch path is an execution strategy, not a
    # different algorithm.
    assert batched_result.stored_bytes == per_record_result.stored_bytes
    assert batched_result.network_bytes == per_record_result.network_bytes
    assert batched_result.inserts == per_record_result.inserts
    assert cluster.replicas_converged()

    # "Not slower" with a generous noise margin.
    assert batched_wall <= per_record_wall * 1.25, (
        f"batched {batched_wall:.3f}s vs per-record {per_record_wall:.3f}s"
    )


def test_sketch_many_amortizes_small_records(once):
    # Small records are where batch amortization pays: per-record numpy
    # dispatch dominates a 120-byte sweep, and one concatenated padded
    # pass spreads that cost over the whole batch. (Large records are
    # routed to the per-record path inside boundaries_many — their sweep
    # is already dispatch-bound no longer, so batching buys nothing.)
    gen = TextGenerator(seed=13)
    docs = [gen.document(120).encode() for _ in range(512)]
    extractor = SketchExtractor(chunker=ContentDefinedChunker(avg_size=64))

    began = time.perf_counter()
    sequential = [extractor.sketch(doc) for doc in docs]
    sequential_wall = time.perf_counter() - began

    began = time.perf_counter()
    batched = once(extractor.sketch_many, docs)
    batched_wall = time.perf_counter() - began

    assert batched == sequential
    # One concatenated numpy pass must beat 512 per-record passes on
    # per-record overhead; require a measurable reduction, not parity.
    assert batched_wall < sequential_wall, (
        f"batched {batched_wall * 1e3:.1f}ms vs "
        f"sequential {sequential_wall * 1e3:.1f}ms"
    )
