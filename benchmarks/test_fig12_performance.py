"""Fig. 12 — throughput and client latency: Original vs dbDedup vs Snappy.

Paper: dbDedup imposes negligible overhead on throughput and on the whole
latency CDF (99.9%-tile within 1%); Snappy costs slightly more because it
compresses inline on the write path (up to 5% on Wikipedia).
"""

from repro.bench.experiments import fig12

WORKLOADS = ("wikipedia", "enron", "stackexchange", "messageboards")


def test_fig12_dedup_overhead_negligible(once):
    result = once(fig12, workloads=WORKLOADS, target_bytes=350_000)
    print()
    print(result.render())

    # Fig. 12b: latency CDF curves for Wikipedia.
    from repro.bench.plot import ascii_cdf

    def cdf(latencies):
        ordered = sorted(latencies)
        step = max(1, len(ordered) // 40)
        return [
            (ordered[i] * 1e3, (i + 1) / len(ordered))
            for i in range(0, len(ordered), step)
        ]

    print()
    print(ascii_cdf(
        {
            "original": cdf(result.row("wikipedia", "original").latencies_s),
            "dbdedup": cdf(result.row("wikipedia", "dbdedup").latencies_s),
        },
        title="Fig. 12b: client latency CDF (wikipedia, ms)",
    ))

    for workload in WORKLOADS:
        original = result.row(workload, "original")
        dedup = result.row(workload, "dbdedup")
        snappy = result.row(workload, "snappy")

        # Throughput: dbDedup within 2% of original.
        assert dedup.throughput_ops > original.throughput_ops * 0.98
        # Latency CDF: mean, median and tail all within 2%.
        assert dedup.mean_latency_s < original.mean_latency_s * 1.02
        assert dedup.p50_latency_s < original.p50_latency_s * 1.02
        assert dedup.p999_latency_s < original.p999_latency_s * 1.05
        # Inline Snappy is the one paying on the write path.
        assert snappy.mean_latency_s >= original.mean_latency_s

        # Fig. 12b: the whole CDF tracks, not just summary points.
        from repro.util.stats import percentile

        for pct in (10, 25, 75, 90, 99):
            base = percentile(list(original.latencies_s), pct)
            ours = percentile(list(dedup.latencies_s), pct)
            assert ours < base * 1.03

