"""Microbenchmarks of the hot primitives (wall-clock, pytest-benchmark).

Not a paper figure — a performance regression net over the kernels every
experiment runs through: chunking, sketching, hashing, indexing, delta
encode/re-encode/decode, and block compression — plus the admission
inline-vs-hybrid sweep pinned against a committed baseline.
"""

import json
import random
from pathlib import Path

import pytest

from repro.chunking.cdc import ContentDefinedChunker
from repro.compression.snappy import snappy_compress, snappy_decompress
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.decode import apply_delta
from repro.delta.reencode import delta_reencode
from repro.hashing.adler import rolling_adler32
from repro.hashing.murmur import murmur3_32
from repro.hashing.rabin import rolling_rabin
from repro.index.cuckoo import CuckooFeatureIndex
from repro.sketch.features import SketchExtractor
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator


@pytest.fixture(scope="module")
def corpus():
    text_gen = TextGenerator(seed=99)
    rng = random.Random(99)
    base = text_gen.document(32_000)
    target = revise(rng, text_gen, base, num_edits=6)
    return base.encode(), target.encode()


def test_rolling_rabin_32k(benchmark, corpus):
    data, _ = corpus
    hashes = benchmark(rolling_rabin, data, 48)
    assert len(hashes) == len(data) - 47


def test_rolling_adler_32k(benchmark, corpus):
    data, _ = corpus
    checksums = benchmark(rolling_adler32, data, 16)
    assert len(checksums) == len(data) - 15


def test_murmur3_1k(benchmark, corpus):
    data, _ = corpus
    value = benchmark(murmur3_32, data[:1024])
    assert 0 <= value <= 0xFFFFFFFF


def test_cdc_chunking_32k(benchmark, corpus):
    data, _ = corpus
    chunker = ContentDefinedChunker(avg_size=64)
    chunks = benchmark(chunker.chunks, data)
    assert b"".join(c.data for c in chunks) == data


def test_sketch_extraction_32k(benchmark, corpus):
    data, _ = corpus
    extractor = SketchExtractor(
        chunker=ContentDefinedChunker(avg_size=64), top_k=8
    )
    sketch = benchmark(extractor.sketch, data)
    assert sketch.features


def test_cuckoo_lookup_insert(benchmark):
    index = CuckooFeatureIndex(num_buckets=1 << 12)
    for feature in range(5000):
        index.insert(feature, f"r{feature}")

    counter = iter(range(10**9))

    def op():
        n = next(counter)
        return index.lookup_and_insert(n % 5000, f"x{n}")

    benchmark(op)


def test_delta_compress_32k(benchmark, corpus):
    base, target = corpus
    compressor = DeltaCompressor(anchor_interval=64)
    delta = benchmark(compressor.compress, base, target)
    assert apply_delta(base, delta) == target


def test_delta_reencode_32k(benchmark, corpus):
    base, target = corpus
    forward = DeltaCompressor(anchor_interval=64).compress(base, target)
    backward = benchmark(delta_reencode, base, forward)
    assert apply_delta(target, backward) == base


def test_delta_decode_32k(benchmark, corpus):
    base, target = corpus
    from repro.delta.instructions import deserialize, serialize

    payload = serialize(DeltaCompressor(anchor_interval=64).compress(base, target))
    insts = deserialize(payload)
    result = benchmark(apply_delta, base, insts)
    assert result == target


def test_snappy_compress_32k(benchmark, corpus):
    data, _ = corpus
    compressed = benchmark(snappy_compress, data)
    assert snappy_decompress(compressed) == data


def test_snappy_decompress_32k(benchmark, corpus):
    data, _ = corpus
    compressed = snappy_compress(data)
    result = benchmark(snappy_decompress, compressed)
    assert result == data


CHUNKING_BASELINE = (
    Path(__file__).parent / "baselines" / "chunking_microbench.json"
)


@pytest.fixture(scope="module")
def chunking_corpus():
    return TextGenerator(seed=77).document(256 * 1024).encode()


def _throughput_mb_s(chunker, data, repeat=3):
    """Best-of-N boundary-scan throughput in MB/s."""
    import time

    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        chunker.boundaries(data)
        best = min(best, time.perf_counter() - t0)
    return len(data) / best / 1e6


def test_chunking_throughput_vectorized_vs_scalar(chunking_corpus):
    """The vectorized lane must stay >= 3x the scalar lane's throughput.

    Measured both against the scalar lane run here and now (robust to
    host speed) and against the committed scalar baseline (catches a
    vectorized-lane regression even if the scalar lane slowed down
    alongside it). Regenerate the baseline after an intended change
    with::

        PYTHONPATH=src python benchmarks/regen_chunking_baseline.py
    """
    scalar = ContentDefinedChunker(avg_size=64, impl="scalar")
    vector = ContentDefinedChunker(avg_size=64, impl="vectorized")
    assert scalar.boundaries(chunking_corpus) == vector.boundaries(
        chunking_corpus
    )

    scalar_mb_s = _throughput_mb_s(scalar, chunking_corpus)
    vector_mb_s = _throughput_mb_s(vector, chunking_corpus)
    assert vector_mb_s >= 3.0 * scalar_mb_s, (
        f"vectorized {vector_mb_s:.1f} MB/s < 3x scalar "
        f"{scalar_mb_s:.1f} MB/s"
    )

    baseline = json.loads(CHUNKING_BASELINE.read_text(encoding="utf-8"))
    assert len(chunking_corpus) == baseline["corpus_bytes"]
    assert vector_mb_s >= 3.0 * baseline["scalar_mb_s"], (
        f"vectorized {vector_mb_s:.1f} MB/s < 3x committed scalar "
        f"baseline {baseline['scalar_mb_s']:.1f} MB/s"
    )


def test_chunking_batch_throughput(benchmark, chunking_corpus):
    records = [
        chunking_corpus[i : i + 4096]
        for i in range(0, len(chunking_corpus), 4096)
    ]
    chunker = ContentDefinedChunker(avg_size=64, impl="vectorized")
    results = benchmark(chunker.boundaries_many, records)
    assert len(results) == len(records)


ADMISSION_BASELINE = (
    Path(__file__).parent / "baselines" / "admission_microbench.json"
)


def test_admission_inline_vs_hybrid(benchmark):
    """Hybrid admission must cut inline CPU at >= 95 % of the ratio.

    Runs the deterministic two-mode sweep once under benchmark timing
    and pins the simulated outcomes against the committed baseline.
    Regenerate the baseline after an intended behaviour change with::

        PYTHONPATH=src python -c "
        from repro.bench.admission_exp import admission_experiment
        r = admission_experiment(mix='wikipedia,oltp',
                                 target_bytes=200_000, seed=7,
                                 modes=('inline', 'hybrid'))
        print(r.render())"
    """
    from repro.bench.admission_exp import admission_experiment

    result = benchmark.pedantic(
        admission_experiment,
        kwargs=dict(
            mix="wikipedia,oltp",
            target_bytes=200_000,
            seed=7,
            modes=("inline", "hybrid"),
        ),
        rounds=1,
        iterations=1,
    )
    rows = {row.mode: row for row in result.rows}
    inline, hybrid = rows["inline"], rows["hybrid"]
    assert inline.invariants_ok and hybrid.invariants_ok

    # The acceptance claim: hybrid spends less simulated CPU inline than
    # all-inline while keeping (at least) 95 % of its dedup ratio —
    # here the drained queue restores it exactly.
    assert hybrid.inline_cpu_s < inline.inline_cpu_s
    assert hybrid.ratio_retained_pct >= 95.0
    assert hybrid.defer_decisions > 0
    assert inline.defer_decisions == 0

    # The sweep is a seeded simulation: integer outcomes must match the
    # committed baseline exactly, simulated CPU within float tolerance.
    baseline = json.loads(ADMISSION_BASELINE.read_text(encoding="utf-8"))
    for mode, row in rows.items():
        expected = baseline[mode]
        assert row.operations == expected["operations"], mode
        assert row.defer_decisions == expected["defer_decisions"], mode
        assert row.storage_ratio == pytest.approx(
            expected["storage_ratio"], rel=1e-3
        ), mode
        assert row.inline_cpu_s == pytest.approx(
            expected["inline_cpu_s"], rel=1e-3
        ), mode
        assert row.outofline_cpu_s == pytest.approx(
            expected["outofline_cpu_s"], rel=1e-3, abs=1e-9
        ), mode
