"""Microbenchmarks of the hot primitives (wall-clock, pytest-benchmark).

Not a paper figure — a performance regression net over the kernels every
experiment runs through: chunking, sketching, hashing, indexing, delta
encode/re-encode/decode, and block compression.
"""

import random

import pytest

from repro.chunking.cdc import ContentDefinedChunker
from repro.compression.snappy import snappy_compress, snappy_decompress
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.decode import apply_delta
from repro.delta.reencode import delta_reencode
from repro.hashing.adler import rolling_adler32
from repro.hashing.murmur import murmur3_32
from repro.hashing.rabin import rolling_rabin
from repro.index.cuckoo import CuckooFeatureIndex
from repro.sketch.features import SketchExtractor
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator


@pytest.fixture(scope="module")
def corpus():
    text_gen = TextGenerator(seed=99)
    rng = random.Random(99)
    base = text_gen.document(32_000)
    target = revise(rng, text_gen, base, num_edits=6)
    return base.encode(), target.encode()


def test_rolling_rabin_32k(benchmark, corpus):
    data, _ = corpus
    hashes = benchmark(rolling_rabin, data, 48)
    assert len(hashes) == len(data) - 47


def test_rolling_adler_32k(benchmark, corpus):
    data, _ = corpus
    checksums = benchmark(rolling_adler32, data, 16)
    assert len(checksums) == len(data) - 15


def test_murmur3_1k(benchmark, corpus):
    data, _ = corpus
    value = benchmark(murmur3_32, data[:1024])
    assert 0 <= value <= 0xFFFFFFFF


def test_cdc_chunking_32k(benchmark, corpus):
    data, _ = corpus
    chunker = ContentDefinedChunker(avg_size=64)
    chunks = benchmark(chunker.chunks, data)
    assert b"".join(c.data for c in chunks) == data


def test_sketch_extraction_32k(benchmark, corpus):
    data, _ = corpus
    extractor = SketchExtractor(
        chunker=ContentDefinedChunker(avg_size=64), top_k=8
    )
    sketch = benchmark(extractor.sketch, data)
    assert sketch.features


def test_cuckoo_lookup_insert(benchmark):
    index = CuckooFeatureIndex(num_buckets=1 << 12)
    for feature in range(5000):
        index.insert(feature, f"r{feature}")

    counter = iter(range(10**9))

    def op():
        n = next(counter)
        return index.lookup_and_insert(n % 5000, f"x{n}")

    benchmark(op)


def test_delta_compress_32k(benchmark, corpus):
    base, target = corpus
    compressor = DeltaCompressor(anchor_interval=64)
    delta = benchmark(compressor.compress, base, target)
    assert apply_delta(base, delta) == target


def test_delta_reencode_32k(benchmark, corpus):
    base, target = corpus
    forward = DeltaCompressor(anchor_interval=64).compress(base, target)
    backward = benchmark(delta_reencode, base, forward)
    assert apply_delta(target, backward) == base


def test_delta_decode_32k(benchmark, corpus):
    base, target = corpus
    from repro.delta.instructions import deserialize, serialize

    payload = serialize(DeltaCompressor(anchor_interval=64).compress(base, target))
    insts = deserialize(payload)
    result = benchmark(apply_delta, base, insts)
    assert result == target


def test_snappy_compress_32k(benchmark, corpus):
    data, _ = corpus
    compressed = benchmark(snappy_compress, data)
    assert snappy_decompress(compressed) == data


def test_snappy_decompress_32k(benchmark, corpus):
    data, _ = corpus
    compressed = snappy_compress(data)
    result = benchmark(snappy_decompress, compressed)
    assert result == data
