"""Fig. 11 — storage vs network compression for dbDedup (64 B chunks).

Paper: storage compression is slightly below network compression (overlapped
encodings + lossy write-back evictions), with the difference under ~5 % on
the full-size datasets. At simulation scale the per-chain constants weigh
more, so the asserted envelope is wider for the chain-heavy Wikipedia
corpus; the ordering (network ≥ storage, both ≫ 1 for dedupable data) is
exact.
"""

from repro.bench.experiments import fig11


def test_fig11_storage_tracks_network(once):
    result = once(fig11, target_bytes=1_200_000)
    print()
    print(result.render())

    for row in result.rows:
        # Forward encoding can only beat or match backward storage.
        assert row.network_ratio >= row.storage_ratio * 0.98
        assert row.storage_ratio >= 1.0
    by_name = {row.workload: row for row in result.rows}
    # Non-versioned datasets stay within a few percent (paper: < 5 %).
    for name in ("enron", "stackexchange", "messageboards"):
        assert by_name[name].normalized_storage > 0.9
    # Wikipedia pays the orphaned-fork cost, amplified by small scale.
    assert by_name["wikipedia"].normalized_storage > 0.6
    # Both sides compress heavily for wikipedia.
    assert by_name["wikipedia"].storage_ratio > 5
