"""Fig. 14 — hop encoding vs version jumping across hop distances.

Paper: version jumping loses 60-90% of backward encoding's compression
(reference versions stored raw) and recovers as H grows; hop encoding stays
within ~10% of backward at every H; hop's worst-case retrievals stay close
to version jumping's H, far below backward's N; both schemes' write-back
counts approach N as H grows.
"""

from repro.bench.experiments import fig14

HOP_DISTANCES = (4, 8, 16, 32)
REVISIONS = 160


def test_fig14_hop_vs_version_jumping(once):
    result = once(fig14, hop_distances=HOP_DISTANCES, revisions=REVISIONS)
    print()
    print(result.render())

    hop_rows = {row.hop_distance: row for row in result.rows_for("hop")}
    vjump_rows = {
        row.hop_distance: row for row in result.rows_for("version-jumping")
    }

    for h in HOP_DISTANCES:
        hop = hop_rows[h]
        vjump = vjump_rows[h]
        # Compression: hop above version jumping at every H, and far
        # above it at small H, where version jumping stores its many
        # reference versions raw. (As H grows version jumping closes in
        # on backward, so the gap narrows by design.)
        assert hop.compression_ratio > vjump.compression_ratio
        if h <= 8:
            assert hop.compression_ratio > vjump.compression_ratio * 2
        if h >= 16:
            # Hop stays within striking distance of plain backward. The
            # paper reports ~10% loss at full Wikipedia scale; on this
            # miniature 160-revision chain a single sketch-driven chain
            # fork (an orphaned raw base) moves the ratio several
            # points, so the floor is set below the paper's margin.
            assert hop.normalized_ratio > 0.65
        # Decode cost: both bounded far below backward's chain length.
        assert hop.worst_case_retrievals < result.backward_retrievals / 2
        assert vjump.worst_case_retrievals <= h + 1

    # Version jumping approaches backward's ratio as H grows.
    assert vjump_rows[32].normalized_ratio > vjump_rows[4].normalized_ratio
    # Version jumping's loss is severe at small H (paper: 60-90% loss).
    assert vjump_rows[4].normalized_ratio < 0.6
    # Decode cost grows with H for hop encoding as well.
    assert hop_rows[32].worst_case_retrievals > hop_rows[4].worst_case_retrievals
