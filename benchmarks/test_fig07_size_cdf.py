"""Fig. 7 — record-size CDF vs space-saving-weighted CDF.

Paper: "the 60% largest records account for approximately 90-95% of data
reduction" — savings concentrate in large records, which is what licenses
the adaptive size filter (§3.4.2).
"""

import pytest

from repro.bench.experiments import fig07


@pytest.mark.parametrize(
    "workload", ["wikipedia", "enron", "stackexchange", "messageboards"]
)
def test_fig07_savings_concentrate_in_large_records(once, workload):
    result = once(fig07, workload, target_bytes=900_000)
    print()
    print(result.render())

    # The saving-weighted CDF must lag the count CDF: at any size cut, the
    # fraction of savings below it is smaller than the fraction of records.
    assert result.top60_saving_share > 0.6
    # CDFs are well-formed.
    assert result.count_cdf[-1][1] == pytest.approx(1.0)
    assert result.saving_cdf[-1][1] == pytest.approx(1.0)
    fractions = [fraction for _, fraction in result.saving_cdf]
    assert fractions == sorted(fractions)
