"""Benchmark harness configuration.

Every benchmark wraps one paper experiment in ``benchmark.pedantic`` with a
single round: the experiments are deterministic simulations, so repeated
rounds would only re-measure the same computation. Each test prints the
regenerated table/figure rows (run with ``-s`` to see them) and asserts the
paper's *shape* claims — orderings and rough factors, not absolute numbers.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run one experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
