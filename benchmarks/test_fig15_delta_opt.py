"""Fig. 15 — anchor-interval sweep vs classic xDelta.

Paper: at interval 16 dbDedup ≈ xDelta; at 64 it is ~80% faster for ~7%
ratio loss; at 128 another ~10% faster for ~15% loss. The monotone
throughput/ratio trade-off is the claim; absolute MB/s are implementation-
bound (C there, Python+numpy here).
"""

from repro.bench.experiments import fig15


def test_fig15_anchor_interval_tradeoff(once):
    result = once(fig15, pair_count=20, body_bytes=10_000)
    print()
    print(result.render())

    xdelta = result.row("xDelta")
    fine = result.row("anchor-16")
    default = result.row("anchor-64")
    coarse = result.row("anchor-128")

    # At the finest interval the ratio matches xDelta's closely.
    assert fine.compression_ratio > xdelta.compression_ratio * 0.9
    # Larger intervals run faster...
    assert coarse.throughput_mb_s > fine.throughput_mb_s
    assert default.throughput_mb_s > fine.throughput_mb_s * 1.1
    # ...for bounded ratio loss at the paper's default.
    assert default.compression_ratio > xdelta.compression_ratio * 0.6
    # The trade-off is monotone in the right direction.
    assert coarse.compression_ratio <= default.compression_ratio * 1.05


def test_fig15_throughput_kernel(benchmark):
    """Wall-clock kernel benchmark: one delta compression at interval 64."""
    from repro.bench.delta_exp import revision_pairs
    from repro.delta.dbdelta import DeltaCompressor

    source, target = revision_pairs(count=1, body_bytes=10_000, seed=3)[0]
    compressor = DeltaCompressor(anchor_interval=64)
    delta = benchmark(compressor.compress, source, target)
    from repro.delta.decode import apply_delta

    assert apply_delta(source, delta) == target
