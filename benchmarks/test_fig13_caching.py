"""Fig. 13 — the two specialized caches.

13a: without the source record cache every source retrieval hits the
database; with it most retrievals hit memory, and the cache-aware reward
removes most remaining misses without hurting compression.

13b: without the lossy write-back cache, backward-encoding write-backs
contend with foreground inserts during bursts; with it they wait for idle
periods and burst throughput recovers.
"""

from repro.bench.experiments import fig13a, fig13b


def test_fig13a_source_cache_reward_sweep(once):
    result = once(fig13a, target_bytes=900_000)
    print()
    print(result.render())

    by_label = {row.label: row for row in result.rows}
    no_cache = by_label["no-cache"]
    reward0 = by_label["0"]
    reward2 = by_label["2"]

    # Without the cache every retrieval misses.
    assert no_cache.cache_miss_ratio == 1.0
    # The cache alone removes the bulk of misses (paper: 74%).
    assert reward0.cache_miss_ratio < 0.5
    # Cache-aware selection removes most of the rest (paper: -40%).
    assert reward2.cache_miss_ratio <= reward0.cache_miss_ratio
    # Compression is not hurt by cache-aware selection.
    assert reward2.compression_ratio >= reward0.compression_ratio * 0.95
    # Higher rewards keep misses down.
    assert by_label["8"].cache_miss_ratio <= reward0.cache_miss_ratio


def test_fig13b_writeback_cache_under_bursts(once):
    result = once(fig13b, target_bytes=500_000)
    print()
    print(result.render())

    from repro.bench.plot import ascii_plot

    print()
    print(ascii_plot(
        {
            "with-cache": result.with_cache,
            "without-cache": result.without_cache,
        },
        title="Fig. 13b: insert throughput over time (ops/s)",
        x_label="seconds",
    ))

    with_cache = result.mean_burst_throughput(result.with_cache)
    without_cache = result.mean_burst_throughput(result.without_cache)
    # The cache defers delta writes to idle periods: bursts run visibly
    # faster (paper shows a clear gap at burst times).
    assert with_cache > without_cache * 1.2
