"""Scale sensitivity — why bench-scale absolute ratios sit below the paper's.

dbDedup's ratio grows with corpus size (longer chains amortize per-chain
raw records) at near-flat index memory; trad-dedup's index memory grows
linearly with unique data. This is §2.2's scaling argument, measured.
"""

from repro.bench.scale import scale_sweep


def test_scale_trends(once):
    result = once(scale_sweep, "wikipedia",
                  targets=(400_000, 1_000_000, 2_200_000))
    print()
    print(result.render())

    small, medium, large = result.rows
    # dbDedup's ratio improves with scale.
    assert large.dbdedup_ratio > small.dbdedup_ratio
    # trad-dedup's index memory grows roughly linearly with the corpus...
    assert large.trad_index_bytes > small.trad_index_bytes * 3
    # ...while dbDedup's stays within a small factor (bounded per record,
    # and record count grows ~5.5x here).
    growth = large.dbdedup_index_bytes / max(1, small.dbdedup_index_bytes)
    assert growth < 8
    # At every scale dbDedup dominates trad-dedup on ratio per index byte.
    for row in result.rows:
        dbdedup_efficiency = row.dbdedup_ratio / max(1, row.dbdedup_index_bytes)
        trad_efficiency = row.trad_ratio / max(1, row.trad_index_bytes)
        assert dbdedup_efficiency > trad_efficiency
