"""Scale sensitivity — why bench-scale absolute ratios sit below the paper's.

dbDedup's ratio grows with corpus size (longer chains amortize per-chain
raw records) at near-flat index memory; trad-dedup's index memory grows
linearly with unique data. This is §2.2's scaling argument, measured.
"""

import os

from repro.bench.scale import budget_probe, index_memory_sweep, scale_sweep


def test_scale_trends(once):
    result = once(scale_sweep, "wikipedia",
                  targets=(400_000, 1_000_000, 2_200_000))
    print()
    print(result.render())

    small, medium, large = result.rows
    # dbDedup's ratio improves with scale.
    assert large.dbdedup_ratio > small.dbdedup_ratio
    # trad-dedup's index memory grows roughly linearly with the corpus...
    assert large.trad_index_bytes > small.trad_index_bytes * 3
    # ...while dbDedup's stays within a small factor (bounded per record,
    # and record count grows ~5.5x here).
    growth = large.dbdedup_index_bytes / max(1, small.dbdedup_index_bytes)
    assert growth < 8
    # At every scale dbDedup dominates trad-dedup on ratio per index byte.
    for row in result.rows:
        dbdedup_efficiency = row.dbdedup_ratio / max(1, row.dbdedup_index_bytes)
        trad_efficiency = row.trad_ratio / max(1, row.trad_index_bytes)
        assert dbdedup_efficiency > trad_efficiency


def test_index_memory_curve(once):
    """Tiered budgets squeeze the hot tier without giving up dedup ratio.

    The acceptance bar for the tiered index: at every budget fraction the
    dedup ratio stays within 5% of the unbounded cuckoo baseline while
    the resident hot tier honors — and shrinks with — its byte budget.
    """
    result = once(index_memory_sweep, "wikipedia", target_bytes=1_500_000,
                  budget_fractions=(0.5, 0.25, 0.125))
    print()
    print(result.render())

    baseline = result.baseline
    tiered = result.rows[1:]
    for row in tiered:
        assert row.dedup_ratio >= baseline.dedup_ratio * 0.95, row.label
        assert row.hot_bytes <= row.hot_bytes_budget, row.label
        assert row.demotions > 0, row.label
    # Squeezing the budget monotonically shrinks the resident hot tier.
    for tighter, looser in zip(tiered[1:], tiered):
        assert tighter.hot_bytes <= looser.hot_bytes


def test_budget_probe_holds_hot_bytes(once):
    """Synthetic feature stream: hot bytes never exceed the budget.

    Defaults to 2·10⁵ features for local runs; CI's index-smoke job sets
    ``INDEX_SMOKE_FEATURES=10000000`` to run the paper-scale probe.
    """
    features = int(os.environ.get("INDEX_SMOKE_FEATURES", "200000"))
    result = once(budget_probe, features=features)
    print()
    print(result.render())

    assert result.peak_hot_bytes <= result.hot_bytes_budget
    assert result.demotions > 0
    assert result.cold_bytes > 0
